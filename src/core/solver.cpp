#include "core/solver.h"

#include <algorithm>
#include <cassert>

#include "cnf/simplify.h"
#include "core/inprocess.h"
#include "proof/proof_writer.h"
#include "telemetry/trace.h"
#include "util/fault.h"
#include "util/memory_budget.h"

namespace berkmin {

// Out of line: ~Solver must see the complete Inprocessor type.
Solver::~Solver() {
  if (budget_ != nullptr && budget_charged_bytes_ != 0) {
    budget_->release(budget_charged_bytes_);
  }
}

void Solver::set_memory_budget(util::MemoryBudget* budget) {
  if (budget_ != nullptr && budget_charged_bytes_ != 0) {
    budget_->release(budget_charged_bytes_);
  }
  budget_ = budget;
  budget_charged_bytes_ = 0;
  sync_budget_charge();
}

void Solver::sync_budget_charge() {
  if (budget_ == nullptr) return;
  const std::uint64_t now =
      static_cast<std::uint64_t>(arena_.capacity_words()) * sizeof(std::uint32_t);
  if (now > budget_charged_bytes_) {
    budget_->charge(now - budget_charged_bytes_);
  } else if (now < budget_charged_bytes_) {
    budget_->release(budget_charged_bytes_ - now);
  }
  budget_charged_bytes_ = now;
}

bool Solver::deny_learned_alloc() {
  if (BERKMIN_FAULT_POINT(util::FaultSite::alloc_clause)) return true;
  if (budget_ != nullptr && !budget_infeasible_ &&
      budget_->pressure() == util::Pressure::critical) {
    // Critical pressure is usually transient (the emergency reductions
    // relieve it), but a budget can be pinned there (a limit below the
    // base formula, or charge held by other tenants). Denying every lemma
    // would then turn the search into non-terminating no-learn restarts,
    // so an escalating escape valve admits one lemma per deny streak and
    // halves the streak length each time it fires, until the pressure
    // ladder declares the budget infeasible (budget_infeasible_) and
    // denial stops altogether.
    if (++pressure_deny_streak_ <= pressure_deny_limit_) {
      budget_->note_degrade();
      pressure_reduce_pending_ = true;  // free memory at the next restart
      return true;
    }
    pressure_deny_streak_ = 0;
    pressure_deny_limit_ = std::max<std::uint32_t>(1, pressure_deny_limit_ / 2);
    return false;
  }
  pressure_deny_streak_ = 0;
  pressure_deny_limit_ = kPressureDenyLimit;  // pressure receded: re-arm
  return false;
}

bool Solver::project_for_proof(std::span<const Lit> lits) {
  proof_scratch_.clear();
  for (const Lit l : lits) {
    if (is_selector_[l.var()]) continue;
    proof_scratch_.push_back(Lit(int2ext_[l.var()], l.is_negative()));
  }
  // A clause whose every literal is a selector has no external meaning:
  // emitting its projection would claim the empty clause. It only states
  // that some combination of groups is contradictory, which the next
  // solve reports as an assumption failure instead.
  return !proof_scratch_.empty() || lits.empty();
}

void Solver::proof_emit_add(std::span<const Lit> lits) {
  if (proof_ == nullptr) return;
  if (!has_selectors_) {
    proof_->add_clause(lits);
    return;
  }
  if (project_for_proof(lits)) proof_->add_clause(proof_scratch_);
}

void Solver::proof_emit_delete(std::span<const Lit> lits) {
  if (proof_ == nullptr) return;
  if (!has_selectors_) {
    proof_->delete_clause(lits);
    return;
  }
  if (project_for_proof(lits)) proof_->delete_clause(proof_scratch_);
}

void Solver::proof_emit_empty() {
  if (proof_ == nullptr || proof_emitted_empty_) return;
  proof_emitted_empty_ = true;
  proof_->add_clause({});
}

Solver::Solver(SolverOptions options)
    : opts_(options),
      var_heap_(VarOrder{&var_activity_}),
      lit_heap_(LitOrder{&chaff_counter_}),
      rng_(options.seed),
      old_threshold_(options.old_activity_threshold) {}

Var Solver::new_internal_var(bool selector) {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(Value::unassigned);
  assign_lit_.push_back(Value::unassigned);
  assign_lit_.push_back(Value::unassigned);
  reason_.push_back(no_clause);
  bin_reason_other_.push_back(undef_lit);
  level_.push_back(0);
  var_activity_.push_back(0);
  seen_.push_back(0);
  is_selector_.push_back(selector ? 1 : 0);
  eliminated_.push_back(0);
  int2ext_.push_back(no_var);
  watches_.resize_literals(2 * static_cast<std::size_t>(v) + 2);
  bin_watches_.resize_literals(2 * static_cast<std::size_t>(v) + 2);
  occ_.emplace_back();
  occ_.emplace_back();
  lit_activity_.push_back(0);
  lit_activity_.push_back(0);
  chaff_counter_.push_back(0);
  chaff_counter_.push_back(0);
  var_heap_.grow(v + 1);
  lit_heap_.grow(2 * v + 2);
  // Selectors are frozen: never in a decision heap, so the heuristics can
  // never branch on one (they are always assigned by the assumption prefix
  // while their group is active, and root-true once it is popped).
  if (!selector) {
    var_heap_.insert(v);
    lit_heap_.insert(Lit::positive(v).code());
    lit_heap_.insert(Lit::negative(v).code());
  }
  return v;
}

Var Solver::new_var() {
  const Var internal = new_internal_var(/*selector=*/false);
  const Var external = static_cast<Var>(ext2int_.size());
  ext2int_.push_back(internal);
  int2ext_[internal] = external;
  return external;
}

Lit Solver::external_to_internal(Lit l) {
  while (l.var() >= num_vars()) new_var();
  return Lit(ext2int_[l.var()], l.is_negative());
}

int Solver::group_index(GroupId id) const {
  for (std::size_t i = 0; i < group_ids_.size(); ++i) {
    if (group_ids_[i] == id) return static_cast<int>(i);
  }
  return -1;
}

GroupId Solver::push_group() {
  cancel_saved_trail();
  assert(decision_level() == 0);
  Var s;
  if (!free_selectors_.empty()) {
    // Reuse a popped group's selector. The pop left the variable with no
    // occurrence in any stored clause, unassigned, and absent from the
    // decision heaps, so it is indistinguishable from a fresh selector.
    s = free_selectors_.back();
    free_selectors_.pop_back();
    ++stats_.selectors_recycled;
  } else {
    s = new_internal_var(/*selector=*/true);
  }
  has_selectors_ = true;
  const GroupId id = next_group_id_++;
  group_ids_.push_back(id);
  group_selectors_.push_back(Lit::positive(s));
  group_active_.push_back(1);
  ++stats_.groups_pushed;
  return id;
}

void Solver::pop_group() {
  assert(!group_ids_.empty());
  if (group_ids_.empty()) return;
  pop_group(group_ids_.back());
}

bool Solver::pop_group(GroupId id) {
  cancel_saved_trail();
  assert(decision_level() == 0);
  const int idx = group_index(id);
  assert(idx >= 0);
  if (idx < 0) return false;
  const Lit s = group_selectors_[static_cast<std::size_t>(idx)];
  group_ids_.erase(group_ids_.begin() + idx);
  group_selectors_.erase(group_selectors_.begin() + idx);
  group_active_.erase(group_active_.begin() + idx);
  ++stats_.groups_popped;
  if (!ok_) return true;  // the refutation was group-independent

  // Retract by asserting the selector at the root: every clause of the
  // group — and every learned clause whose derivation depended on it,
  // which carries s by construction (conflict analysis never resolves on
  // selector variables, so the literal is inherited) — becomes satisfied.
  // No clause contains ~s, so this can never conflict by itself; a
  // conflict here comes from user units still pending propagation. Groups
  // pushed later than `id` are untouched: their selectors are distinct
  // variables, so neither their clauses nor their lemmas can be satisfied
  // by s, and out-of-order pops retract exactly one group.
  assert(value(s) != Value::false_value);
  if (value(s) == Value::unassigned) enqueue(s, no_clause);
  if (propagate_internal() != no_clause) {
    ok_ = false;
    proof_emit_empty();
    return true;
  }

  // Collect the dead clauses immediately, exactly like a reduction: drop
  // root reasons (conflict analysis never expands level-0 literals), then
  // garbage-collect everything a retained root assignment satisfies.
  // Learned clauses free of the popped selector survive — they are
  // consequences of the remaining formula — and keep their activities.
  for (const Lit l : trail_) {
    reason_[l.var()] = no_clause;
    bin_reason_other_[l.var()] = undef_lit;
  }
  std::vector<char> keep(learned_stack_.size(), 1);
  std::uint64_t dropped = 0;
  for (std::size_t i = 0; i < learned_stack_.size(); ++i) {
    if (clause_is_satisfied(learned_stack_[i])) {
      keep[i] = 0;
      ++dropped;
    }
  }
  stats_.pop_dropped_learned += dropped;
  stats_.pop_retained_learned += learned_stack_.size() - dropped;
  garbage_collect(keep);

  // After the collection no stored clause mentions s (every clause that
  // did was satisfied by it and dropped; ~s never occurs anywhere), so
  // the variable can leave the trail and rejoin the pool.
  recycle_selector(s.var());
  return true;
}

void Solver::recycle_selector(Var v) {
  assert(decision_level() == 0);
  assert(is_selector_[static_cast<std::size_t>(v)]);
  assert(assign_[static_cast<std::size_t>(v)] == Value::true_value);
  // Splice the (root-true) selector out of the trail. Nothing on the
  // trail depends on it: a clause containing s is satisfied while s is
  // true (so it never propagates), and no clause contains ~s.
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    if (trail_[i].var() != v) continue;
    trail_.erase(trail_.begin() + static_cast<std::ptrdiff_t>(i));
    break;
  }
  propagate_head_ = trail_.size();
  assign_[static_cast<std::size_t>(v)] = Value::unassigned;
  assign_lit_[Lit::positive(v).code()] = Value::unassigned;
  assign_lit_[Lit::negative(v).code()] = Value::unassigned;
  reason_[static_cast<std::size_t>(v)] = no_clause;
  bin_reason_other_[static_cast<std::size_t>(v)] = undef_lit;
  level_[static_cast<std::size_t>(v)] = 0;
  var_activity_[static_cast<std::size_t>(v)] = 0;
  lit_activity_[Lit::positive(v).code()] = 0;
  lit_activity_[Lit::negative(v).code()] = 0;
  chaff_counter_[Lit::positive(v).code()] = 0;
  chaff_counter_[Lit::negative(v).code()] = 0;
  free_selectors_.push_back(v);
}

bool Solver::set_group_active(GroupId id, bool active) {
  const int idx = group_index(id);
  if (idx < 0) return false;
  group_active_[static_cast<std::size_t>(idx)] = active ? 1 : 0;
  return true;
}

bool Solver::add_clause_to_group(GroupId id, std::span<const Lit> lits) {
  const int idx = group_index(id);
  if (idx < 0) return false;  // stale handle: a refusal, nothing added
  forced_selector_ = group_selectors_[static_cast<std::size_t>(idx)];
  const bool result = add_root_clause(lits, /*learned=*/false);
  forced_selector_ = undef_lit;
  return result;
}

bool Solver::add_clause(std::span<const Lit> lits) {
  return add_root_clause(lits, /*learned=*/false);
}

bool Solver::add_root_clause(std::span<const Lit> lits, bool learned,
                             std::uint32_t glue) {
  cancel_saved_trail();
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Problem clauses arrive in external numbering and, inside a live
  // group, gain a group selector literal: the innermost group's, unless
  // add_clause_to_group targeted a specific one. Learned/imported clauses
  // are already internal (they come from this solver's or an identically-
  // laid-out sibling's conflict analysis) and carry whatever selectors
  // their derivations depended on.
  add_scratch_.clear();
  if (learned) {
    for (const Lit l : lits) {
      while (l.var() >= num_internal_vars()) new_var();
      add_scratch_.push_back(l);
    }
  } else {
    for (const Lit l : lits) add_scratch_.push_back(external_to_internal(l));
    if (forced_selector_ != undef_lit) {
      add_scratch_.push_back(forced_selector_);
    } else if (!group_selectors_.empty()) {
      add_scratch_.push_back(group_selectors_.back());
    }
  }

  auto normalized = normalize_clause(add_scratch_);
  if (!normalized) return true;  // tautology: trivially satisfied

  // Root-level reduction against already-forced assignments.
  std::vector<Lit> reduced;
  reduced.reserve(normalized->size());
  for (const Lit l : *normalized) {
    const Value v = value(l);
    if (v == Value::true_value) return true;  // already satisfied
    if (v == Value::unassigned) reduced.push_back(l);
  }

  if (reduced.empty()) {
    // Every literal is false under the retained root assignment: the
    // formula is refuted, and the empty clause is a unit-propagation
    // consequence the proof trace can end with.
    ok_ = false;
    proof_emit_empty();
    return false;
  }
  // Imported clauses frequently duplicate lemmas this solver (or an earlier
  // import) already holds; an identical binary would be attached twice and
  // propagate twice per trigger. The binary watch lists make the membership
  // test one contiguous scan. Nothing enters the database, so nothing is
  // logged to the proof either.
  if (learned && reduced.size() == 2 &&
      binary_clause_present(reduced[0], reduced[1])) {
    ++stats_.duplicate_binaries_skipped;
    return true;
  }
  // Learned/imported clauses are additions the original formula does not
  // contain, so the proof must record them (in the root-simplified form
  // the database actually holds, which is RUP given the logged units).
  if (learned) proof_emit_add(reduced);
  if (reduced.size() == 1) {
    enqueue(reduced[0], no_clause);
    // Propagation of the unit happens lazily in solve(); a conflict there
    // flips ok_.
    return true;
  }
  add_clause_internal(reduced, learned, glue);
  return true;
}

bool Solver::add_clause(std::initializer_list<Lit> lits) {
  return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
}

bool Solver::import_clause(std::span<const Lit> lits, std::uint32_t glue) {
  // Shared clauses are resolution consequences of the (identical) formula
  // a sibling solver holds, so adding them preserves both satisfiability
  // and unsatisfiability answers. They enter the learned stack — not the
  // originals — so the Section 8 database management ages them out like
  // any other lemma instead of pinning them forever.
  for (const Lit l : lits) {
    if (var_eliminated(l.var())) return true;  // see import_clause contract
  }
  ++stats_.imported_clauses;
  return add_root_clause(lits, /*learned=*/true, glue);
}

bool Solver::load(const Cnf& cnf) {
  while (num_vars() < cnf.num_vars()) new_var();
  for (const auto& clause : cnf.clauses()) {
    if (!add_clause(clause)) return false;
  }
  return ok_;
}

ClauseRef Solver::add_clause_internal(std::span<const Lit> lits, bool learned,
                                      std::uint32_t glue) {
  assert(lits.size() >= 2);
  const ClauseRef ref = arena_.alloc(lits, learned, glue);
  if (learned) {
    learned_stack_.push_back(ref);
    satisfied_cache_.push_back(undef_lit);
  } else {
    originals_.push_back(ref);
    for (const Lit l : lits) occ_[l.code()].push_back(ref);
  }
  attach_clause(ref);
  update_live_peak();
  sync_budget_charge();
  return ref;
}

void Solver::attach_clause(ClauseRef ref) {
  const Clause c = arena_.deref(ref);
  assert(c.size() >= 2);
  if (c.size() == 2) {
    bin_watches_.push((~c[0]).code(), BinWatch{c[1], ref});
    bin_watches_.push((~c[1]).code(), BinWatch{c[0], ref});
    return;
  }
  watches_.push((~c[0]).code(), Watcher{ref, c[1]});
  watches_.push((~c[1]).code(), Watcher{ref, c[0]});
}

bool Solver::binary_clause_present(Lit a, Lit b) const {
  const int code = (~a).code();
  const BinWatch* w = bin_watches_.data(code);
  for (std::uint32_t i = 0, n = bin_watches_.size(code); i < n; ++i) {
    if (w[i].other == b) return true;
  }
  return false;
}

void Solver::update_live_peak() {
  const std::uint64_t live = originals_.size() + learned_stack_.size();
  if (live > stats_.max_live_clauses) stats_.max_live_clauses = live;
}

void Solver::enqueue(Lit l, ClauseRef reason, Lit bin_other) {
  assert(value(l) == Value::unassigned);
  const Var v = l.var();
  assign_[v] = to_value(l.is_positive());
  assign_lit_[l.code()] = Value::true_value;
  assign_lit_[(~l).code()] = Value::false_value;
  reason_[v] = reason;
  bin_reason_other_[v] = bin_other;
  level_[v] = decision_level();
  trail_.push_back(l);
}

void Solver::assume(Lit l) {
  new_decision_level();
  enqueue(l, no_clause);
}

ClauseRef Solver::propagate() {
  telemetry::PhaseScope bcp_scope(telemetry_, telemetry::Phase::bcp);
  return propagate_internal();
}

ClauseRef Solver::propagate_internal() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];  // p is now true
    const int pcode = p.code();
    const Lit false_lit = ~p;

    // Binary clauses first: one contiguous scan, zero arena derefs. The
    // implied literal sits inline in the watch entry, so every step is a
    // single assign_lit_ load plus (rarely) an enqueue. Nothing is pushed
    // during the scan, so a raw pointer into the pool is safe.
    {
      const BinWatch* bw = bin_watches_.data(pcode);
      for (std::uint32_t n = bin_watches_.size(pcode); n != 0; --n, ++bw) {
        const Value v = assign_lit_[bw->other.code()];
        if (v == Value::true_value) continue;
        if (v == Value::false_value) {
          propagate_head_ = trail_.size();
          return bw->cref;
        }
        ++stats_.propagations;
        enqueue(bw->other, bw->cref, false_lit);
      }
    }

    // Longer clauses through the flat pool. The span is walked by absolute
    // pool index: pushing a moved watch for another literal may grow the
    // pool (relocating that literal's span and possibly the whole vector),
    // but this literal's offset never changes mid-scan, and no clause ever
    // re-watches ~p while p is true.
    const std::uint32_t base = watches_.offset(pcode);
    const std::uint32_t end = watches_.size(pcode);
    std::uint32_t i = 0;
    std::uint32_t j = 0;
    while (i != end) {
      const Watcher w = watches_.at(base + i);
      // Satisfied via the blocker: keep the watcher, skip the clause.
      if (assign_lit_[w.blocker.code()] == Value::true_value) {
        watches_.at(base + j++) = w;
        ++i;
        continue;
      }

      Clause c = arena_.deref(w.cref);
      // Normalize so the false watch sits in slot 1.
      if (c[0] == false_lit) {
        c.set_lit(0, c[1]);
        c.set_lit(1, false_lit);
      }
      ++i;

      const Lit first = c[0];
      const Watcher replacement{w.cref, first};
      if (first != w.blocker && assign_lit_[first.code()] == Value::true_value) {
        watches_.at(base + j++) = replacement;
        continue;
      }

      // Look for a non-false literal to take over the watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < c.size(); ++k) {
        if (assign_lit_[c[k].code()] != Value::false_value) {
          c.set_lit(1, c[k]);
          c.set_lit(k, false_lit);
          watches_.push((~c[1]).code(), replacement);
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting under the current assignment.
      watches_.at(base + j++) = replacement;
      if (assign_lit_[first.code()] == Value::false_value) {
        // Conflict: flush the remaining watchers and stop propagating.
        while (i != end) watches_.at(base + j++) = watches_.at(base + i++);
        watches_.truncate(pcode, j);
        propagate_head_ = trail_.size();
        return w.cref;
      }
      ++stats_.propagations;
      enqueue(first, w.cref);
    }
    watches_.truncate(pcode, j);
  }
  return no_clause;
}

void Solver::backtrack_to(int target_level) {
  if (decision_level() <= target_level) return;
  const int boundary = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(boundary);) {
    const Lit l = trail_[i];
    const Var v = l.var();
    assign_[v] = Value::unassigned;
    assign_lit_[l.code()] = Value::unassigned;
    assign_lit_[(~l).code()] = Value::unassigned;
    reason_[v] = no_clause;
    bin_reason_other_[v] = undef_lit;
    if (is_selector_[v]) continue;  // selectors never enter a decision heap
    var_heap_.insert(v);
    if (opts_.decision_policy == DecisionPolicy::chaff_literal) {
      lit_heap_.insert(Lit::positive(v).code());
      lit_heap_.insert(Lit::negative(v).code());
    }
  }
  trail_.resize(boundary);
  trail_lim_.resize(target_level);
  propagate_head_ = trail_.size();
}

namespace {

// The Luby sequence 1,1,2,1,1,2,4,1,... (0-based index).
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

std::uint64_t Solver::next_restart_limit() const {
  switch (opts_.restart_policy) {
    case RestartPolicy::fixed_interval:
      return opts_.restart_interval;
    case RestartPolicy::luby:
      return luby(luby_index_) * opts_.luby_unit;
    case RestartPolicy::none:
      return 0;  // interpreted as "never"
  }
  return 0;
}

// Budgets bound the work of one solve() call, so they are checked against
// the distance from the entry snapshot, not the cumulative counters — a
// preempted job re-entering solve() gets a full fresh slice.
bool Solver::budget_exhausted(const Budget& budget) {
  if (stop_requested()) {
    last_stop_cause_ = StopCause::external_stop;
    return true;
  }
  if (budget.max_conflicts &&
      stats_.conflicts - slice_base_.conflicts >= budget.max_conflicts) {
    last_stop_cause_ = StopCause::conflict_budget;
    return true;
  }
  if (budget.max_decisions &&
      stats_.decisions - slice_base_.decisions >= budget.max_decisions) {
    last_stop_cause_ = StopCause::decision_budget;
    return true;
  }
  if (budget.max_propagations &&
      stats_.propagations - slice_base_.propagations >= budget.max_propagations) {
    last_stop_cause_ = StopCause::propagation_budget;
    return true;
  }
  return false;
}

SolveStatus Solver::solve(const Budget& budget) {
  return solve_with_assumptions({}, budget);
}

SolveStatus Solver::solve_with_assumptions(std::span<const Lit> assumptions,
                                           const Budget& budget) {
  solve_timer_.restart();
  const std::int64_t trace_start_ns =
      telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  // A budget-stopped slice left the search state intact; the next call
  // resumes it (restart pacing and decay countdowns included) instead of
  // behaving like a fresh search.
  const bool resume_search = is_resumable(last_stop_cause_);
  if (stats_.initial_clauses == 0) {
    stats_.initial_clauses = std::max<std::uint64_t>(1, originals_.size());
  }
  failed_assumptions_.clear();
  failed_by_assumptions_ = false;
  last_stop_cause_ = StopCause::none;
  slice_base_ = SliceBase{stats_.conflicts, stats_.decisions,
                          stats_.propagations, stats_.restarts,
                          stats_.learned_clauses};
  last_slice_ = SliceStats{};
  // Probe a previously-infeasible budget afresh: external charge may have
  // been released between solves.
  budget_infeasible_ = false;
  critical_reduce_streak_ = 0;
  pressure_deny_streak_ = 0;
  pressure_deny_limit_ = kPressureDenyLimit;
  if (!ok_) return SolveStatus::unsatisfiable;

  // The assumption prefix: the live groups' selectors first (negated for
  // an active group — "on" — and positive for a deactivated one, which
  // satisfies the group's clauses and lemmas for this solve), then the
  // caller's assumptions translated to internal numbering. Assuming
  // rather than asserting the selectors is what makes learned clauses
  // record their group dependencies: a selector falsified at an
  // assumption level enters conflict clauses like any other literal,
  // while a root-level literal never would.
  assumptions_.clear();
  assumptions_.reserve(group_selectors_.size() + assumptions.size());
  for (std::size_t i = 0; i < group_selectors_.size(); ++i) {
    assumptions_.push_back(group_active_[i] ? ~group_selectors_[i]
                                            : group_selectors_[i]);
  }
  for (const Lit a : assumptions) assumptions_.push_back(external_to_internal(a));

  // Trail-saving: the previous solve left the decision levels realizing
  // saved_prefix_ in place (clause/group mutations in between cancelled
  // them). Keep the longest prefix shared with this solve's assumption
  // vector — every literal on the kept segment is a decision or
  // propagation this solve skips — and rewind the rest.
  if (decision_level() > 0) {
    std::size_t common = 0;
    const std::size_t limit =
        std::min({saved_prefix_.size(), assumptions_.size(),
                  static_cast<std::size_t>(decision_level())});
    while (common < limit && saved_prefix_[common] == assumptions_[common]) {
      ++common;
    }
    backtrack_to(static_cast<int>(common));
    if (common > 0) {
      ++stats_.trail_saves;
      stats_.trail_saved_literals +=
          trail_.size() - static_cast<std::size_t>(trail_lim_[0]);
    }
  }
  saved_prefix_.clear();

  // Root propagation of any units queued by add_clause (adds cancel any
  // saved trail, so pending units always meet decision level 0 here and a
  // conflict is a genuine root refutation).
  ClauseRef root_conflict;
  {
    telemetry::PhaseScope bcp_scope(telemetry_, telemetry::Phase::bcp);
    root_conflict = propagate_internal();
  }
  if (root_conflict != no_clause && decision_level() > 0) {
    // Defensive: a kept segment should already be at its propagation
    // fixpoint; if it somehow is not, restart the solve from the root
    // rather than mistake an assumption-level conflict for a refutation.
    backtrack_to(0);
    root_conflict = propagate_internal();
  }
  if (root_conflict != no_clause) {
    ok_ = false;
    proof_emit_empty();
    assumptions_.clear();
    record_slice();
    telemetry_finish_solve(trace_start_ns, SolveStatus::unsatisfiable);
    return SolveStatus::unsatisfiable;
  }

  const SolveStatus status = search(budget, resume_search);
  if (status == SolveStatus::unsatisfiable && !failed_by_assumptions_) {
    ok_ = false;
  }
  finish_solve_trail();
  assumptions_.clear();
  if (has_selectors_ && !failed_assumptions_.empty()) {
    // The caller sees its own assumptions only: selector literals are
    // internal bookkeeping ("this group is active"), and exposing one
    // would dangle as soon as its group is popped.
    std::size_t kept = 0;
    for (const Lit l : failed_assumptions_) {
      if (is_selector_[l.var()]) continue;
      failed_assumptions_[kept++] = Lit(int2ext_[l.var()], l.is_negative());
    }
    failed_assumptions_.resize(kept);
  }
  record_slice();
  telemetry_finish_solve(trace_start_ns, status);
  return status;
}

void Solver::finish_solve_trail() {
  if (!opts_.save_trail || !ok_) {
    saved_prefix_.clear();
    backtrack_to(0);
    return;
  }
  // Keep the assumption decision levels (level i realizes assumptions_[i-1];
  // any deeper levels are search decisions and are rewound). The next solve
  // backtracks further, to the longest prefix shared with its own
  // assumption vector.
  const int keep =
      std::min(decision_level(), static_cast<int>(assumptions_.size()));
  backtrack_to(keep);
  saved_prefix_.assign(assumptions_.begin(), assumptions_.begin() + keep);
}

void Solver::cancel_saved_trail() {
  saved_prefix_.clear();
  if (decision_level() > 0) backtrack_to(0);
}

void Solver::telemetry_finish_solve(std::int64_t start_ns, SolveStatus status) {
  if (telemetry_ == nullptr) return;
  telemetry_->publish(stats_, &telemetry_seen_);
  telemetry_->emit(telemetry::EventKind::solve, start_ns,
                   telemetry_->now_ns() - start_ns, last_slice_.conflicts,
                   static_cast<std::uint64_t>(status));
}

void Solver::record_slice() {
  last_slice_.conflicts = stats_.conflicts - slice_base_.conflicts;
  last_slice_.decisions = stats_.decisions - slice_base_.decisions;
  last_slice_.propagations = stats_.propagations - slice_base_.propagations;
  last_slice_.restarts = stats_.restarts - slice_base_.restarts;
  last_slice_.learned_clauses =
      stats_.learned_clauses - slice_base_.learned_clauses;
  last_slice_.seconds = solve_timer_.seconds();
}

Lit Solver::next_assumption(bool* failed) {
  *failed = false;
  while (decision_level() < static_cast<int>(assumptions_.size())) {
    const Lit a = assumptions_[decision_level()];
    const Value v = value(a);
    if (v == Value::true_value) {
      new_decision_level();  // dummy level: already satisfied
      continue;
    }
    if (v == Value::false_value) {
      analyze_final(a);
      *failed = true;
      return undef_lit;
    }
    return a;
  }
  return undef_lit;
}

void Solver::analyze_final(Lit failing) {
  failed_assumptions_.clear();
  failed_assumptions_.push_back(failing);
  failed_by_assumptions_ = true;
  if (decision_level() == 0) return;

  seen_[failing.var()] = 1;
  for (std::size_t i = trail_.size();
       i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[v]) continue;
    seen_[v] = 0;
    if (reason_[v] == no_clause) {
      // Every decision below the assumption prefix is an assumption.
      failed_assumptions_.push_back(trail_[i]);
    } else if (bin_reason_other_[v] != undef_lit) {
      // Binary reason {trail_[i], other}: the tail is the one stored literal.
      const Var other = bin_reason_other_[v].var();
      if (level_[other] > 0) seen_[other] = 1;
    } else {
      const Clause c = arena_.deref(reason_[v]);
      for (std::uint32_t k = 1; k < c.size(); ++k) {
        if (level_[c[k].var()] > 0) seen_[c[k].var()] = 1;
      }
    }
  }
  seen_[failing.var()] = 0;
}

SolveStatus Solver::search(const Budget& budget, bool resume) {
  // A resumed slice keeps its restart pacing and decay countdowns: without
  // this, a job run as N short slices restarted at every slice boundary
  // and its aggregated stats diverged from an unpreempted run of the same
  // budget (see the service preemption regression tests).
  if (!resume) {
    conflicts_since_restart_ = 0;
    conflicts_until_var_decay_ = opts_.var_decay_interval;
    conflicts_until_lit_decay_ = opts_.lit_decay_interval;
  }
  std::uint64_t steps_until_clock_check = 1024;

  for (;;) {
    if (stop_requested()) {
      last_stop_cause_ = StopCause::external_stop;
      return SolveStatus::unknown;
    }
    if (--steps_until_clock_check == 0) {
      steps_until_clock_check = 1024;
      if (budget.max_seconds > 0.0 && solve_timer_.seconds() >= budget.max_seconds) {
        last_stop_cause_ = StopCause::wall_clock;
        return SolveStatus::unknown;
      }
    }

    ClauseRef conflict;
    {
      telemetry::PhaseScope bcp_scope(telemetry_, telemetry::Phase::bcp);
      conflict = propagate_internal();
    }
    if (conflict != no_clause) {
      resolve_conflict(conflict);
      if (!ok_) return SolveStatus::unsatisfiable;

      if (opts_.var_decay_interval && --conflicts_until_var_decay_ == 0) {
        decay_var_activities();
        conflicts_until_var_decay_ = opts_.var_decay_interval;
      }
      if (opts_.decision_policy == DecisionPolicy::chaff_literal &&
          opts_.lit_decay_interval && --conflicts_until_lit_decay_ == 0) {
        decay_chaff_counters();
        conflicts_until_lit_decay_ = opts_.lit_decay_interval;
      }
      if (budget_exhausted(budget)) return SolveStatus::unknown;
    } else {
      const std::uint64_t restart_limit = next_restart_limit();
      if (restart_limit != 0 && conflicts_since_restart_ >= restart_limit) {
        handle_restart();
        if (!ok_) return SolveStatus::unsatisfiable;
        continue;
      }

      bool assumption_failed = false;
      Lit next = next_assumption(&assumption_failed);
      if (assumption_failed) return SolveStatus::unsatisfiable;
      if (next == undef_lit) {
        {
          telemetry::PhaseScope decide_scope(telemetry_, telemetry::Phase::decide);
          next = pick_branch();
        }
        if (next == undef_lit) {
          save_model();
          return SolveStatus::satisfiable;
        }
      }
      ++stats_.decisions;
      if (budget.max_decisions &&
          stats_.decisions - slice_base_.decisions > budget.max_decisions) {
        last_stop_cause_ = StopCause::decision_budget;
        return SolveStatus::unknown;
      }
      new_decision_level();
      enqueue(next, no_clause);
    }
  }
}

void Solver::save_model() {
  // External numbering; selector variables have no external image, so the
  // reported model covers exactly the caller's variables.
  model_.resize(ext2int_.size());
  for (std::size_t u = 0; u < ext2int_.size(); ++u) {
    model_[u] = assign_[static_cast<std::size_t>(ext2int_[u])];
  }
  // Variables removed by bounded variable elimination carry an arbitrary
  // placeholder assignment; the witness stack recorded at elimination time
  // overrides them so every eliminated original clause is satisfied.
  if (inprocessor_ != nullptr) inprocessor_->extend_model(model_);
}

std::vector<Lit> Solver::clause_literals(ClauseRef ref) const {
  std::vector<Lit> out;
  arena_.deref(ref).copy_to(out);
  return out;
}

std::uint32_t Solver::clause_activity(ClauseRef ref) const {
  return arena_.deref(ref).activity();
}

std::uint64_t Solver::nb_two(Lit l) const {
  // Section 7: count binary clauses containing l; for each such clause
  // {l, v}, also count binary clauses containing ~v. "Binary" means the
  // clause has exactly two unassigned literals and no satisfied literal in
  // the current formula. Computation stops at nb_two_threshold.
  const auto currently_binary = [&](ClauseRef ref, Lit* other, Lit in) -> bool {
    const Clause c = arena_.deref(ref);
    Lit free_a = undef_lit;
    Lit free_b = undef_lit;
    for (std::uint32_t i = 0; i < c.size(); ++i) {
      const Value v = value(c[i]);
      if (v == Value::true_value) return false;
      if (v == Value::unassigned) {
        if (free_a == undef_lit) {
          free_a = c[i];
        } else if (free_b == undef_lit) {
          free_b = c[i];
        } else {
          return false;  // three or more free literals
        }
      }
    }
    if (free_b == undef_lit) return false;  // unit or empty
    if (other != nullptr) *other = (free_a == in) ? free_b : free_a;
    return true;
  };

  std::uint64_t total = 0;
  std::uint32_t scanned = 0;
  for (const ClauseRef ref : occ_[l.code()]) {
    if (total > opts_.nb_two_threshold || ++scanned > opts_.nb_two_scan_cap) break;
    Lit other = undef_lit;
    if (!currently_binary(ref, &other, l)) continue;
    ++total;
    std::uint32_t inner_scanned = 0;
    for (const ClauseRef ref2 : occ_[(~other).code()]) {
      if (total > opts_.nb_two_threshold ||
          ++inner_scanned > opts_.nb_two_scan_cap) {
        break;
      }
      if (currently_binary(ref2, nullptr, ~other)) ++total;
    }
  }
  return total;
}

}  // namespace berkmin
