#include "core/backbone.h"

namespace berkmin {

BackboneResult compute_backbone(const Cnf& cnf, const SolverOptions& options,
                                const Budget& per_call_budget) {
  BackboneResult result;
  Solver solver(options);
  solver.load(cnf);

  ++result.solver_calls;
  const SolveStatus first = solver.solve(per_call_budget);
  if (first == SolveStatus::unknown) {
    result.complete = false;
    return result;
  }
  if (first == SolveStatus::unsatisfiable) return result;
  result.satisfiable = true;

  // Candidates: the literals of the first model. Each model seen later
  // prunes every candidate it contradicts (a literal false in some model
  // is not backbone).
  std::vector<Lit> candidates;
  for (Var v = 0; v < cnf.num_vars(); ++v) {
    const Value value = solver.model()[v];
    if (value != Value::unassigned) {
      candidates.push_back(Lit(v, value == Value::false_value));
    }
  }

  std::vector<char> decided(static_cast<std::size_t>(cnf.num_vars()), 0);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Lit candidate = candidates[i];
    if (decided[candidate.var()]) continue;
    if (!solver.ok()) break;

    const std::vector<Lit> assumption{~candidate};
    ++result.solver_calls;
    const SolveStatus status =
        solver.solve_with_assumptions(assumption, per_call_budget);
    if (status == SolveStatus::unknown) {
      result.complete = false;
      break;
    }
    if (status == SolveStatus::unsatisfiable) {
      // ~candidate is impossible: candidate is backbone. Fixing it as a
      // unit strengthens all later calls.
      result.backbone.push_back(candidate);
      decided[candidate.var()] = 1;
      solver.add_clause({candidate});
    } else {
      // The new model refutes this candidate — and possibly others.
      decided[candidate.var()] = 1;
      for (std::size_t j = i + 1; j < candidates.size(); ++j) {
        const Lit other = candidates[j];
        if (!decided[other.var()] &&
            value_of_literal(solver.model()[other.var()], other) ==
                Value::false_value) {
          decided[other.var()] = 1;
        }
      }
    }
  }
  return result;
}

}  // namespace berkmin
