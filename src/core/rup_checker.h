// Reverse-unit-propagation (RUP) proof checking.
//
// A clause C is a RUP consequence of a clause database D when asserting
// the negation of every literal of C and running unit propagation on D
// derives a conflict. Every clause a CDCL solver learns has this property,
// which makes RupChecker both a verifier for DRAT proofs emitted by
// DratWriter and a property-testing oracle for the solver's learning
// machinery.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "cnf/cnf_formula.h"
#include "cnf/literal.h"

namespace berkmin {

class RupChecker {
 public:
  explicit RupChecker(const Cnf& cnf);

  // Checks that `clause` is RUP with respect to the current database and,
  // if so, adds it. Returns false when the check fails.
  bool add_and_check(std::span<const Lit> clause);

  // Removes one stored copy of `clause` (deletions never endanger proof
  // soundness). Returns false if no matching clause is stored.
  bool remove(std::span<const Lit> clause);

  // True when the empty clause has been derived (the proof is complete).
  bool derived_empty() const { return derived_empty_; }

  std::size_t num_clauses() const { return live_clauses_; }

 private:
  struct StoredClause {
    std::vector<Lit> lits;
    bool deleted = false;
  };

  bool propagate_is_conflicting(std::span<const Lit> assumptions);
  void ensure_var(Var v);

  std::vector<StoredClause> clauses_;
  std::vector<std::uint32_t> unit_ids_;  // seeds for every propagation
  // Occurrence lists over stored clause ids, rebuilt lazily on growth.
  std::vector<std::vector<std::uint32_t>> occ_;
  std::map<std::vector<Lit>, std::vector<std::uint32_t>> by_lits_;
  std::vector<Value> assign_;
  std::size_t live_clauses_ = 0;
  bool derived_empty_ = false;
};

}  // namespace berkmin
