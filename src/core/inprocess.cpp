// Inprocessing passes (see inprocess.h for the soundness contract).
//
// RUP notes, pass by pass, against a checker that holds the original
// formula plus every add the trace logged so far:
//
//  * probing: assuming l and unit-propagating the live database reaches a
//    conflict, and every live clause is either logged or subsumes a logged
//    stripped form, so the checker's propagation reaches the same conflict
//    — {~l} is RUP;
//  * self-subsumption: the strengthened clause is the resolvent of two
//    live clauses, falsifying it unit-propagates the weakened parent and
//    then the strengthener — RUP;
//  * vivification: assuming the negation of a prefix of C propagates a
//    conflict (or one of C's own literals), so the prefix is RUP by the
//    same propagation;
//  * variable elimination: each resolvent of two live clauses is RUP;
//    removed clauses are deleted only after every resolvent is logged
//    (add-before-delete).
#include "core/inprocess.h"

#include <algorithm>
#include <cassert>

#include "core/solver.h"
#include "telemetry/trace.h"

namespace berkmin {

namespace {

// Step cap for the subsumption occurrence scans, so one pass stays a
// bounded slice of the restart even on dense formulas.
constexpr std::uint64_t kSubsumptionStepBudget = std::uint64_t{1} << 17;

bool lit_code_less(Lit a, Lit b) { return a.code() < b.code(); }

}  // namespace

Inprocessor::Inprocessor(Solver& solver) : s_(solver) {}

std::uint64_t Inprocessor::signature_of(const std::vector<Lit>& lits) {
  std::uint64_t sig = 0;
  for (const Lit l : lits) {
    sig |= std::uint64_t{1} << (static_cast<std::uint32_t>(l.var()) % 64);
  }
  return sig;
}

bool Inprocessor::assert_unit(Lit l) {
  const Value v = s_.value(l);
  if (v == Value::true_value) return true;
  if (v == Value::false_value) {
    s_.ok_ = false;
    s_.proof_emit_empty();
    return false;
  }
  s_.enqueue(l, no_clause);
  if (s_.propagate_internal() != no_clause) {
    s_.ok_ = false;
    s_.proof_emit_empty();
    return false;
  }
  return true;
}

bool Inprocessor::install_derived(const std::vector<Lit>& lits, bool learned,
                                  std::uint32_t glue) {
  // Normalize: sort by code, merge duplicates, drop tautologies.
  derived_scratch_ = lits;
  std::sort(derived_scratch_.begin(), derived_scratch_.end(), lit_code_less);
  derived_scratch_.erase(
      std::unique(derived_scratch_.begin(), derived_scratch_.end()),
      derived_scratch_.end());
  for (std::size_t i = 1; i < derived_scratch_.size(); ++i) {
    if (derived_scratch_[i].var() == derived_scratch_[i - 1].var()) {
      return true;  // tautology: nothing to install
    }
  }
  // Root reduction; the reduced form is what gets logged and stored (RUP
  // given the units the checker can propagate itself).
  std::size_t kept = 0;
  for (const Lit l : derived_scratch_) {
    const Value v = s_.value(l);
    if (v == Value::true_value) return true;  // already satisfied
    if (v == Value::unassigned) derived_scratch_[kept++] = l;
  }
  derived_scratch_.resize(kept);

  for (const Lit l : derived_scratch_) derived_var_[l.var()] = 1;

  if (derived_scratch_.empty()) {
    s_.ok_ = false;
    s_.proof_emit_empty();
    return false;
  }
  s_.proof_emit_add(derived_scratch_);
  if (derived_scratch_.size() == 1) {
    if (learned) {
      s_.last_learned_glue_ = 1;
      if (s_.learn_callback_) s_.learn_callback_(derived_scratch_);
    }
    return assert_unit(derived_scratch_[0]);
  }
  const std::uint32_t capped_glue =
      glue == 0 ? 0
                : std::min<std::uint32_t>(
                      glue, static_cast<std::uint32_t>(derived_scratch_.size()));
  if (learned) {
    s_.last_learned_glue_ =
        capped_glue != 0
            ? capped_glue
            : static_cast<std::uint32_t>(derived_scratch_.size());
    if (s_.learn_callback_) s_.learn_callback_(derived_scratch_);
  }
  s_.add_clause_internal(derived_scratch_, learned, capped_glue);
  return true;
}

bool Inprocessor::probe_failed_literals() {
  const std::uint32_t nvars =
      static_cast<std::uint32_t>(s_.num_internal_vars());
  if (nvars == 0) return true;
  std::uint32_t probes = 0;
  const std::uint32_t budget = s_.opts_.inprocess.probe_budget;
  for (std::uint32_t scanned = 0; scanned < nvars && probes < budget;
       ++scanned) {
    const Var v = static_cast<Var>(probe_cursor_++ % nvars);
    if (s_.value(v) != Value::unassigned) continue;
    if (s_.is_selector_var(v) || s_.var_eliminated(v)) continue;
    for (const Lit l : {Lit::positive(v), Lit::negative(v)}) {
      if (probes >= budget) break;
      if (s_.value(v) != Value::unassigned) break;  // assigned by a probe
      ++probes;
      s_.assume(l);
      const ClauseRef conflict = s_.propagate_internal();
      s_.backtrack_to(0);
      if (conflict == no_clause) continue;
      // l fails: ~l is a unit consequence of the database. Log it, share
      // it (a unit is the best possible lemma), then assert it.
      ++s_.stats_.probed_units;
      unit_scratch_.assign(1, ~l);
      s_.proof_emit_add(unit_scratch_);
      s_.last_learned_glue_ = 1;
      if (s_.learn_callback_) s_.learn_callback_(unit_scratch_);
      if (!assert_unit(~l)) return false;
    }
  }
  return true;
}

void Inprocessor::build_index() {
  items_.clear();
  occ_.assign(2 * static_cast<std::size_t>(s_.num_internal_vars()), {});
  const auto index_clause = [&](ClauseRef ref, bool learned,
                                std::uint32_t stack_index) {
    if (s_.clause_is_satisfied(ref)) return;  // dropped by the next GC anyway
    Item item;
    item.ref = ref;
    item.learned = learned;
    item.stack_index = stack_index;
    const Clause c = s_.arena_.deref(ref);
    item.glue = c.glue();
    for (std::uint32_t i = 0; i < c.size(); ++i) {
      // Store the root-stripped form: false literals are logically dead
      // (the stripped clause is RUP given root units), and stripping here
      // makes subsumption checks exact against what GC will keep.
      if (s_.value(c[i]) == Value::unassigned) item.lits.push_back(c[i]);
    }
    assert(item.lits.size() >= 2);  // fixpoint: units propagated, sat skipped
    std::sort(item.lits.begin(), item.lits.end(), lit_code_less);
    item.signature = signature_of(item.lits);
    const std::uint32_t idx = static_cast<std::uint32_t>(items_.size());
    for (const Lit l : item.lits) occ_[l.code()].push_back(idx);
    items_.push_back(std::move(item));
  };
  for (std::size_t i = 0; i < s_.originals_.size(); ++i) {
    index_clause(s_.originals_[i], /*learned=*/false,
                 static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < s_.learned_stack_.size(); ++i) {
    index_clause(s_.learned_stack_[i], /*learned=*/true,
                 static_cast<std::uint32_t>(i));
  }
}

namespace {

// a \subseteq b, both sorted by literal code.
bool lits_subset(const std::vector<Lit>& a, const std::vector<Lit>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end(), lit_code_less);
}

// (a \ {flip}) u {~flip} \subseteq b, both sorted by literal code.
bool lits_subset_with_flip(const std::vector<Lit>& a, Lit flip,
                           const std::vector<Lit>& b) {
  std::size_t j = 0;
  for (const Lit raw : a) {
    const Lit want = raw == flip ? ~raw : raw;
    while (j < b.size() && b[j].code() < want.code()) ++j;
    if (j == b.size() || b[j] != want) return false;
    ++j;
  }
  return true;
}

}  // namespace

bool Inprocessor::subsume_and_strengthen() {
  // Small-to-large: short clauses are the strongest subsumers, and the
  // step budget then goes to them first.
  std::vector<std::uint32_t> order(items_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return items_[a].lits.size() < items_[b].lits.size();
  });

  std::uint64_t steps = 0;
  constexpr std::size_t kMaxSubsumerSize = 20;
  for (const std::uint32_t i : order) {
    Item& sub = items_[i];
    if (sub.removed) continue;
    if (sub.lits.size() > kMaxSubsumerSize) break;  // sorted: all larger now
    if (steps >= kSubsumptionStepBudget) break;

    // Forward subsumption: scan the occurrence list of sub's rarest
    // literal — every superset of sub must appear there.
    const Lit* rare = &sub.lits[0];
    for (const Lit& l : sub.lits) {
      if (occ_[l.code()].size() < occ_[rare->code()].size()) rare = &l;
    }
    for (const std::uint32_t j : occ_[rare->code()]) {
      if (++steps >= kSubsumptionStepBudget) break;
      if (j == i) continue;
      Item& other = items_[j];
      if (other.removed) continue;
      if (other.lits.size() < sub.lits.size()) continue;
      if ((sub.signature & ~other.signature) != 0) continue;
      if (!lits_subset(sub.lits, other.lits)) continue;
      if (sub.learned && !other.learned) {
        // A learned clause may vanish in a future reduction, so it cannot
        // be the surviving evidence for an original. When the two are
        // identical the duplicate learned copy is the one to drop.
        if (sub.lits.size() == other.lits.size()) {
          sub.removed = true;
          ++s_.stats_.subsumed_clauses;
          break;
        }
        continue;
      }
      other.removed = true;
      ++s_.stats_.subsumed_clauses;
    }
    if (sub.removed) continue;

    // Self-subsumption: if (sub \ {l}) u {~l} subsumes j, resolving on l
    // strengthens j to j \ {~l}.
    for (const Lit l : sub.lits) {
      if (steps >= kSubsumptionStepBudget) break;
      for (const std::uint32_t j : occ_[(~l).code()]) {
        if (++steps >= kSubsumptionStepBudget) break;
        if (j == i) continue;
        Item& other = items_[j];
        if (other.removed) continue;
        if (other.lits.size() < sub.lits.size()) continue;
        if ((sub.signature & ~other.signature) != 0) continue;
        if (!lits_subset_with_flip(sub.lits, l, other.lits)) continue;
        derived_scratch_.clear();
        for (const Lit ol : other.lits) {
          if (ol != ~l) derived_scratch_.push_back(ol);
        }
        // The resolvent subsumes `other`, so it inherits other's role
        // (original stays original) and a no-worse glue.
        const std::vector<Lit> strengthened = derived_scratch_;
        ++s_.stats_.strengthened_clauses;
        other.removed = true;
        if (!install_derived(strengthened, other.learned, other.glue)) {
          return false;
        }
      }
    }
  }
  return true;
}

bool Inprocessor::vivify_clauses() {
  if (items_.empty()) return true;
  const std::uint32_t budget = s_.opts_.inprocess.vivify_budget;
  std::uint32_t attempts = 0;
  const std::size_t n = items_.size();
  for (std::size_t scanned = 0; scanned < n && attempts < budget; ++scanned) {
    Item& item = items_[vivify_cursor_++ % n];
    if (item.removed || !item.learned || item.lits.size() < 3) continue;
    // Skip clauses touched by root assignments made since build_index;
    // their stored literal copies are stale.
    bool stale = false;
    for (const Lit l : item.lits) {
      if (s_.value(l) != Value::unassigned) {
        stale = true;
        break;
      }
    }
    if (stale) continue;
    ++attempts;

    assert(s_.decision_level() == 0);
    unit_scratch_.clear();  // the shortened candidate
    bool done = false;
    for (const Lit l : item.lits) {
      const Value v = s_.value(l);
      if (v == Value::true_value) {
        // ~(prefix) propagated l: the prefix plus l is already a clause
        // of the database's consequences.
        unit_scratch_.push_back(l);
        done = true;
        break;
      }
      if (v == Value::false_value) continue;  // ~(prefix) |= ~l: drop l
      s_.assume(~l);
      unit_scratch_.push_back(l);
      if (s_.propagate_internal() != no_clause) {
        // ~(prefix) is contradictory: the prefix itself is a clause.
        done = true;
        break;
      }
    }
    (void)done;
    s_.backtrack_to(0);
    if (unit_scratch_.size() >= item.lits.size()) continue;  // no gain
    ++s_.stats_.vivified_clauses;
    item.removed = true;
    const std::vector<Lit> shortened = unit_scratch_;
    if (!install_derived(shortened, /*learned=*/true, item.glue)) return false;
  }
  return true;
}

bool Inprocessor::eliminate_variables() {
  const std::uint32_t max_occ = s_.opts_.inprocess.var_elim_max_occurrences;
  const std::uint32_t max_res = s_.opts_.inprocess.var_elim_max_resolvents;
  std::vector<std::uint32_t> pos_items;
  std::vector<std::uint32_t> neg_items;
  std::vector<std::uint32_t> learned_items;
  std::vector<std::vector<Lit>> resolvents;

  for (Var v = 0; v < s_.num_internal_vars(); ++v) {
    if (s_.value(v) != Value::unassigned) continue;
    if (s_.is_selector_var(v) || s_.var_eliminated(v)) continue;
    // Clauses installed during this pass are invisible to items_; if one
    // mentions v the elimination could not remove it, so v is off-limits.
    if (derived_var_[v] != 0) continue;

    pos_items.clear();
    neg_items.clear();
    learned_items.clear();
    bool over_budget = false;
    for (const bool positive : {true, false}) {
      const Lit l = positive ? Lit::positive(v) : Lit::negative(v);
      for (const std::uint32_t idx : occ_[l.code()]) {
        const Item& item = items_[idx];
        if (item.removed) continue;
        if (item.learned) {
          learned_items.push_back(idx);
          continue;
        }
        auto& side = positive ? pos_items : neg_items;
        side.push_back(idx);
        if (pos_items.size() + neg_items.size() > max_occ) {
          over_budget = true;
          break;
        }
      }
      if (over_budget) break;
    }
    if (over_budget) continue;
    if (pos_items.empty() && neg_items.empty()) continue;

    // All non-tautological resolvents on v; reject the variable when they
    // would outnumber the clauses removed (database growth) or the cap.
    const std::size_t removed_count = pos_items.size() + neg_items.size();
    resolvents.clear();
    bool rejected = false;
    for (const std::uint32_t pi : pos_items) {
      for (const std::uint32_t ni : neg_items) {
        derived_scratch_.clear();
        bool taut = false;
        const auto push_checked = [&](Lit l) {
          for (const Lit existing : derived_scratch_) {
            if (existing == ~l) {
              taut = true;
              return;
            }
            if (existing == l) return;
          }
          derived_scratch_.push_back(l);
        };
        for (const Lit l : items_[pi].lits) {
          if (l.var() != v) push_checked(l);
          if (taut) break;
        }
        for (const Lit l : items_[ni].lits) {
          if (taut) break;
          if (l.var() != v) push_checked(l);
        }
        if (taut) continue;
        resolvents.push_back(derived_scratch_);
        if (resolvents.size() > max_res || resolvents.size() > removed_count) {
          rejected = true;
          break;
        }
      }
      if (rejected) break;
    }
    if (rejected) continue;

    // Commit: log and install every resolvent first (add-before-delete;
    // the removals are emitted by apply_removals), then stack the witness.
    for (const auto& resolvent : resolvents) {
      if (!install_derived(resolvent, /*learned=*/false, 0)) return false;
    }
    Elimination elim;
    elim.var = v;
    for (const std::uint32_t idx : pos_items) {
      elim.clauses.push_back(items_[idx].lits);
      items_[idx].removed = true;
    }
    for (const std::uint32_t idx : neg_items) {
      elim.clauses.push_back(items_[idx].lits);
      items_[idx].removed = true;
    }
    for (const std::uint32_t idx : learned_items) {
      if (!items_[idx].removed) items_[idx].removed = true;
    }
    eliminations_.push_back(std::move(elim));
    s_.eliminated_[static_cast<std::size_t>(v)] = 1;
    ++s_.stats_.eliminated_vars;
    // Mark v derived so a later candidate sharing a resolvent cannot
    // resurrect it within this pass.
    derived_var_[v] = 1;
  }
  return true;
}

void Inprocessor::apply_removals() {
  bool any_removed = false;
  for (const Item& item : items_) any_removed |= item.removed;
  if (!any_removed) return;

  // Root assignments are permanent; clear their reason references before
  // the collection invalidates every ClauseRef (same dance as reduce_db).
  for (const Lit l : s_.trail_) {
    s_.reason_[l.var()] = no_clause;
    s_.bin_reason_other_[l.var()] = undef_lit;
  }

  // Keep masks sized to the *current* stacks: clauses installed during the
  // pass sit past the indices items_ recorded and default to kept.
  std::vector<char> keep_originals(s_.originals_.size(), 1);
  std::vector<char> keep_learned(s_.learned_stack_.size(), 1);
  for (const Item& item : items_) {
    if (!item.removed) continue;
    if (item.learned) {
      keep_learned[item.stack_index] = 0;
    } else {
      keep_originals[item.stack_index] = 0;
    }
  }
  // Learned clauses satisfied by retained root facts must not be migrated
  // (GC's invariant), exactly as classify_learned decides in reduce_db.
  for (std::size_t i = 0; i < s_.learned_stack_.size(); ++i) {
    if (keep_learned[i] && s_.clause_is_satisfied(s_.learned_stack_[i])) {
      keep_learned[i] = 0;
    }
  }
  s_.garbage_collect(keep_learned, &keep_originals);
}

void Inprocessor::run() {
  if (!s_.ok_ || s_.has_selectors_) return;
  assert(s_.decision_level() == 0);
  // The restart callback may have queued imported units; every pass below
  // assumes the root fixpoint.
  if (s_.propagate_internal() != no_clause) {
    s_.ok_ = false;
    s_.proof_emit_empty();
    return;
  }

  ++s_.stats_.inprocessings;
  telemetry::PhaseScope scope(s_.telemetry_, telemetry::Phase::inprocess);
  const std::int64_t start_ns =
      s_.telemetry_ != nullptr ? s_.telemetry_->now_ns() : 0;
  const std::uint64_t derived_before = s_.stats_.probed_units +
                                       s_.stats_.strengthened_clauses +
                                       s_.stats_.vivified_clauses;
  const std::size_t eliminations_before = eliminations_.size();

  derived_var_.assign(static_cast<std::size_t>(s_.num_internal_vars()), 0);
  items_.clear();

  bool alive = probe_failed_literals();
  if (alive) {
    build_index();
    alive = subsume_and_strengthen();
  }
  if (alive) alive = vivify_clauses();
  if (alive && s_.opts_.inprocess.var_elim && s_.assumptions_.empty()) {
    alive = eliminate_variables();
  }

  std::uint64_t removed = 0;
  if (alive) {
    for (const Item& item : items_) removed += item.removed ? 1 : 0;
    apply_removals();
    // Give freshly eliminated, still-unassigned variables a placeholder
    // root value AFTER the collection detached their clauses: nothing can
    // propagate through them any more, the decision heuristics skip them,
    // and extend_model overrides the value wherever a witness needs to.
    for (std::size_t e = eliminations_before; e < eliminations_.size(); ++e) {
      const Var v = eliminations_[e].var;
      if (s_.value(v) == Value::unassigned) {
        s_.enqueue(Lit::positive(v), no_clause);
      }
    }
    s_.propagate_head_ = s_.trail_.size();  // placeholders touch no clause
  }

  if (s_.telemetry_ != nullptr) {
    const std::uint64_t derived_after = s_.stats_.probed_units +
                                        s_.stats_.strengthened_clauses +
                                        s_.stats_.vivified_clauses;
    s_.telemetry_->emit(telemetry::EventKind::inprocess, start_ns,
                        s_.telemetry_->now_ns() - start_ns,
                        derived_after - derived_before, removed);
  }
}

void Inprocessor::extend_model(std::vector<Value>& model) const {
  // Newest elimination first: an older witness may mention variables
  // eliminated later (they were still live when it was copied), so those
  // must be finalized before the older witness is evaluated. The converse
  // cannot happen — a newer witness was copied from a database that no
  // longer contained any older eliminated variable.
  for (auto it = eliminations_.rbegin(); it != eliminations_.rend(); ++it) {
    const Var v = it->var;
    if (static_cast<std::size_t>(v) >= model.size()) continue;
    bool need_pos = false;
    bool need_neg = false;
    for (const auto& clause : it->clauses) {
      Lit own = undef_lit;
      bool satisfied_by_rest = false;
      for (const Lit l : clause) {
        if (l.var() == v) {
          own = l;
          continue;
        }
        if (static_cast<std::size_t>(l.var()) < model.size() &&
            value_of_literal(model[l.var()], l) == Value::true_value) {
          satisfied_by_rest = true;
          break;
        }
      }
      if (satisfied_by_rest || own == undef_lit) continue;
      (own.is_positive() ? need_pos : need_neg) = true;
    }
    // At most one polarity can be forced: two opposing forced clauses
    // would falsify their resolvent, which the model satisfies.
    assert(!(need_pos && need_neg));
    if (need_pos) {
      model[v] = Value::true_value;
    } else if (need_neg) {
      model[v] = Value::false_value;
    }
  }
}

}  // namespace berkmin
