// Internal-consistency validation of a Solver.
//
// Checks the invariants the CDCL engine relies on: watch-list integrity
// (every stored clause watched exactly twice, on its first two literals),
// trail/assignment agreement, reason/implication sanity, and the
// learned-stack bookkeeping. Used by the test suite after solves and
// reductions; expensive (full database scan), so it is a free function
// rather than something the engine calls itself.
#pragma once

#include <string>

#include "core/solver.h"

namespace berkmin {

// Returns an empty string when every invariant holds, otherwise a
// description of the first violation found.
std::string validate_solver_invariants(const Solver& solver);

}  // namespace berkmin
