#include "core/enumerate.h"

namespace berkmin {

std::uint64_t enumerate_models(
    Solver& solver, const EnumerateOptions& options,
    const std::function<void(const std::vector<Value>&)>& on_model,
    bool* complete) {
  if (complete != nullptr) *complete = true;

  std::vector<Var> projection = options.projection;
  if (projection.empty()) {
    for (Var v = 0; v < solver.num_vars(); ++v) projection.push_back(v);
  }

  std::uint64_t found = 0;
  std::vector<Lit> blocking;
  while (options.max_models == 0 || found < options.max_models) {
    const SolveStatus status = solver.solve(options.per_model_budget);
    if (status == SolveStatus::unknown) {
      if (complete != nullptr) *complete = false;
      break;
    }
    if (status == SolveStatus::unsatisfiable) break;

    ++found;
    if (on_model) on_model(solver.model());

    // Block this assignment of the projection variables. A variable the
    // projection leaves out may take either value, so distinct projected
    // assignments are what gets counted.
    blocking.clear();
    for (const Var v : projection) {
      const Value value = solver.model()[v];
      if (value == Value::unassigned) continue;
      blocking.push_back(Lit(v, value == Value::true_value));
    }
    if (blocking.empty()) break;  // projection fully unconstrained
    if (!solver.add_clause(blocking)) break;
  }
  return found;
}

std::uint64_t count_models(const Cnf& cnf, const SolverOptions& solver_options,
                           const EnumerateOptions& options) {
  Solver solver(solver_options);
  solver.load(cnf);
  return enumerate_models(solver, options, nullptr);
}

}  // namespace berkmin
