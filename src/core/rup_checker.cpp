#include "core/rup_checker.h"

#include <algorithm>

#include "cnf/simplify.h"

namespace berkmin {

RupChecker::RupChecker(const Cnf& cnf) {
  ensure_var(cnf.num_vars() - 1);
  for (const auto& clause : cnf.clauses()) {
    auto normalized = normalize_clause(clause);
    if (!normalized) continue;
    StoredClause stored;
    stored.lits = std::move(*normalized);
    const auto id = static_cast<std::uint32_t>(clauses_.size());
    for (const Lit l : stored.lits) {
      ensure_var(l.var());
      occ_[l.code()].push_back(id);
    }
    by_lits_[stored.lits].push_back(id);
    if (stored.lits.empty()) derived_empty_ = true;
    if (stored.lits.size() == 1) unit_ids_.push_back(id);
    clauses_.push_back(std::move(stored));
    ++live_clauses_;
  }
}

void RupChecker::ensure_var(Var v) {
  if (v < 0) return;
  const std::size_t needed = static_cast<std::size_t>(v) + 1;
  if (assign_.size() < needed) assign_.resize(needed, Value::unassigned);
  if (occ_.size() < 2 * needed) occ_.resize(2 * needed);
}

// Counter-free unit propagation over full occurrence lists. Quadratic in
// the worst case but entirely adequate for test-sized formulas, and easy
// to audit — which is the point of a proof checker.
bool RupChecker::propagate_is_conflicting(std::span<const Lit> assumptions) {
  std::vector<Lit> trail;
  bool conflict = false;

  const auto enqueue = [&](Lit l) {
    const Value v = value_of_literal(assign_[l.var()], l);
    if (v == Value::true_value) return;
    if (v == Value::false_value) {
      conflict = true;
      return;
    }
    assign_[l.var()] = to_value(l.is_positive());
    trail.push_back(l);
  };

  for (const Lit l : assumptions) {
    ensure_var(l.var());
    enqueue(l);
    if (conflict) break;
  }

  // Stored unit clauses are propagation seeds: without a trail literal to
  // trigger them through occurrence lists, they would otherwise be missed.
  for (const std::uint32_t id : unit_ids_) {
    if (conflict) break;
    if (!clauses_[id].deleted) enqueue(clauses_[id].lits[0]);
  }

  std::size_t head = 0;
  while (!conflict && head < trail.size()) {
    const Lit p = trail[head++];
    // Clauses containing ~p may have become unit or empty.
    for (const std::uint32_t id : occ_[(~p).code()]) {
      const StoredClause& stored = clauses_[id];
      if (stored.deleted) continue;
      Lit unit = undef_lit;
      bool satisfied = false;
      int free_count = 0;
      for (const Lit l : stored.lits) {
        const Value v = value_of_literal(assign_[l.var()], l);
        if (v == Value::true_value) {
          satisfied = true;
          break;
        }
        if (v == Value::unassigned) {
          ++free_count;
          unit = l;
          if (free_count > 1) break;
        }
      }
      if (satisfied || free_count > 1) continue;
      if (free_count == 0) {
        conflict = true;
        break;
      }
      enqueue(unit);
      if (conflict) break;
    }
  }

  for (const Lit l : trail) assign_[l.var()] = Value::unassigned;
  return conflict;
}

bool RupChecker::add_and_check(std::span<const Lit> clause) {
  auto normalized = normalize_clause(std::vector<Lit>(clause.begin(), clause.end()));
  if (!normalized) return true;  // tautologies are vacuously sound

  for (const Lit l : *normalized) ensure_var(l.var());

  // Negate the clause and propagate; RUP requires a conflict.
  std::vector<Lit> negated;
  negated.reserve(normalized->size());
  for (const Lit l : *normalized) negated.push_back(~l);
  if (!propagate_is_conflicting(negated)) return false;

  StoredClause stored;
  stored.lits = std::move(*normalized);
  const auto id = static_cast<std::uint32_t>(clauses_.size());
  for (const Lit l : stored.lits) occ_[l.code()].push_back(id);
  by_lits_[stored.lits].push_back(id);
  if (stored.lits.empty()) derived_empty_ = true;
  if (stored.lits.size() == 1) unit_ids_.push_back(id);
  clauses_.push_back(std::move(stored));
  ++live_clauses_;
  return true;
}

bool RupChecker::remove(std::span<const Lit> clause) {
  auto normalized = normalize_clause(std::vector<Lit>(clause.begin(), clause.end()));
  if (!normalized) return true;
  const auto it = by_lits_.find(*normalized);
  if (it == by_lits_.end() || it->second.empty()) return false;
  const std::uint32_t id = it->second.back();
  it->second.pop_back();
  clauses_[id].deleted = true;
  --live_clauses_;
  return true;
}

}  // namespace berkmin
