// DRAT trace (de)serialization.
//
// Reads a textual or binary DRAT stream back into a proof::Proof so the
// in-tree checker can verify traces produced by an earlier run (or by
// another solver), and writes a buffered Proof out in either format.
// The two formats are distinguishable by their first byte — a binary
// trace starts with an 'a' (0x61) or 'd'+0x00... step tag that no textual
// trace can start with — so read_drat_file can autodetect.
#pragma once

#include <iosfwd>
#include <string>

#include "proof/proof.h"

namespace berkmin::proof {

enum class DratFormat : std::uint8_t { text, binary };

// Parses a stream in the given format. Returns false and fills *error on
// the first malformed step (the partially parsed prefix stays in *out).
bool read_drat(std::istream& in, DratFormat format, Proof* out,
               std::string* error);

// Reads a whole file, autodetecting the format from the first byte
// (binary steps start with 'a' 0x61 or 'd' 0x64 followed by varint bytes;
// a textual trace starts with a digit, '-', 'd' followed by whitespace,
// whitespace itself, or a 'c' comment).
bool read_drat_file(const std::string& path, Proof* out, std::string* error,
                    DratFormat* detected = nullptr);

void write_drat(std::ostream& out, const Proof& proof, DratFormat format);
bool write_drat_file(const std::string& path, const Proof& proof,
                     DratFormat format, std::string* error);

}  // namespace berkmin::proof
