#include "proof/proof_writer.h"

#include "util/fault.h"

namespace berkmin::proof {

void TextDratWriter::add_clause(std::span<const Lit> lits) {
  ++added_;
  if (failed_) return;
  write_lits(lits);
  check_stream();
}

void TextDratWriter::delete_clause(std::span<const Lit> lits) {
  ++deleted_;
  if (failed_) return;
  out_ << "d ";
  write_lits(lits);
  check_stream();
}

void TextDratWriter::write_lits(std::span<const Lit> lits) {
  for (const Lit l : lits) out_ << to_dimacs(l) << ' ';
  out_ << "0\n";
}

void TextDratWriter::check_stream() {
  // An injected io_short_write fault models a sink that truncated the
  // step (full disk, broken pipe); the real detection is the stream
  // state check that follows either way.
  if (BERKMIN_FAULT_POINT(util::FaultSite::io_short_write)) {
    out_.setstate(std::ios::failbit);
  }
  if (!out_) mark_failed("short write: text DRAT output stream failed");
}

void BinaryDratWriter::add_clause(std::span<const Lit> lits) {
  ++added_;
  if (failed_) return;
  write_step('a', lits);
  check_stream();
}

void BinaryDratWriter::delete_clause(std::span<const Lit> lits) {
  ++deleted_;
  if (failed_) return;
  write_step('d', lits);
  check_stream();
}

void BinaryDratWriter::write_step(char tag, std::span<const Lit> lits) {
  out_.put(tag);
  for (const Lit l : lits) {
    // drat-trim's mapping: literal v -> 2v, -v -> 2v+1 (v the 1-based
    // DIMACS variable), then 7-bit little-endian chunks with a
    // continuation bit.
    const int dimacs = to_dimacs(l);
    std::uint32_t mapped = dimacs > 0
                               ? 2u * static_cast<std::uint32_t>(dimacs)
                               : 2u * static_cast<std::uint32_t>(-dimacs) + 1u;
    while (mapped >= 0x80u) {
      out_.put(static_cast<char>(0x80u | (mapped & 0x7Fu)));
      mapped >>= 7;
    }
    out_.put(static_cast<char>(mapped));
  }
  out_.put('\0');
}

void BinaryDratWriter::check_stream() {
  if (BERKMIN_FAULT_POINT(util::FaultSite::io_short_write)) {
    out_.setstate(std::ios::failbit);
  }
  if (!out_) mark_failed("short write: binary DRAT output stream failed");
}

void replay(const Proof& proof, ProofWriter& writer) {
  for (const ProofStep& step : proof.steps) {
    if (step.is_add()) {
      writer.add_clause(step.lits);
    } else {
      writer.delete_clause(step.lits);
    }
  }
}

}  // namespace berkmin::proof
