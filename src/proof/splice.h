// Splicing per-worker proof traces into one checkable portfolio proof.
//
// A portfolio worker's trace is not checkable on its own: clauses imported
// from siblings appear in its derivations without a justification. The
// splicer fixes that by giving every worker a tagged ProofWriter whose
// steps carry the worker id and a global sequence number (one shared
// atomic counter), and by merging all per-worker buffers in sequence order
// after the race. The merged trace is a valid DRUP/DRAT proof of the
// shared formula because
//
//  * a clause is published to the exchange only after its addition was
//    logged, and an importer logs its (root-simplified) copy only after
//    collecting it, so every add appears after the adds it depends on —
//    the atomic counter's total order extends the export -> import
//    happens-before edges;
//  * every worker logs a deletion exactly when it drops a clause from its
//    own database, so at any prefix of the spliced trace the checker's
//    live multiset holds at least one copy of every clause some worker
//    still has — each worker's own copy-add precedes its own deletion,
//    and its derivations only lean on clauses still in its database;
//  * the one race that rule leaves open is closed by deferral: worker A
//    deleting a clause it PUBLISHED could otherwise land before a slow
//    sibling's copy-add (the sibling's cursor moves inside collect, its
//    import is logged after), leaving that copy-add without a live
//    justification. Deletions of published clauses are therefore parked
//    (keyed by their exchange entry index) and sequenced only once
//    note_collected() shows every worker's imports have been logged past
//    that entry; whatever is still parked when the race ends is flushed
//    at the tail of spliced(), where no later step can depend on it.
//
// Deletions of clauses that were never accepted by the exchange pass
// through immediately: no sibling ever received a copy, and an identical
// independently-derived lemma elsewhere is backed by that worker's own
// logged addition (the checker deletes by literal multiset, one live copy
// per holder). Keeping deletions in the trace is what bounds a checker's
// live database on long multi-worker races — see
// CheckResult::peak_live_clauses.
//
// Thread safety: writer(i) and note_published(i, ...) must be used by
// worker i's thread only (they touch that worker's buffer and published
// map); note_collected() and the deferred queue are mutex-protected and
// may be called from any worker thread. spliced() may be called once
// every worker thread has joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "proof/proof.h"
#include "proof/proof_writer.h"

namespace berkmin::proof {

class ProofSplicer {
 public:
  explicit ProofSplicer(int num_workers);

  // The proof sink for worker `id`; owned by the splicer, valid for its
  // lifetime. Additions are tagged with `id`; deletions of published
  // clauses are deferred as described above, all others pass through.
  ProofWriter* writer(int id);

  // Worker `id` just had `lits` accepted by the clause exchange as entry
  // `entry_index`. Must be called from worker id's own thread, after the
  // clause's addition was logged (Solver logs at learn time, before the
  // learn callback publishes). A later deletion of the same literals by
  // this worker is deferred until the entry is safe to delete.
  void note_published(int id, std::span<const Lit> lits,
                      std::size_t entry_index);

  // Worker `id` has imported — and therefore logged copies for — every
  // exchange entry below `cursor`. Releases deferred deletions whose
  // entry is below every worker's noted cursor, giving them fresh
  // sequence numbers (i.e. "now", after all copy-adds they must follow).
  void note_collected(int id, std::size_t cursor);

  // Steps logged so far, across all workers (post-join use only).
  std::size_t total_steps() const;

  // Deletions currently parked awaiting note_collected() coverage
  // (post-join use; spliced() flushes them at the trace tail).
  std::size_t deferred_deletions() const;

  // Merges every worker's buffer (plus released deletions) into one trace
  // ordered by the global sequence, with any still-deferred deletions
  // appended at the end. Call only while no worker is solving.
  Proof spliced() const;

 private:
  struct SequencedStep {
    std::uint64_t seq = 0;
    ProofStep step;
  };

  class TaggedWriter : public ProofWriter {
   public:
    TaggedWriter(ProofSplicer* owner, std::int32_t id)
        : owner_(owner), id_(id) {}
    void add_clause(std::span<const Lit> lits) override;
    void delete_clause(std::span<const Lit> lits) override;

   private:
    friend class ProofSplicer;
    ProofSplicer* owner_;
    std::int32_t id_;
    std::vector<SequencedStep> buffer_;
    // Sorted-code key -> exchange entry index for every clause this
    // worker published. Touched only from this worker's thread.
    std::map<std::vector<std::int32_t>, std::size_t> published_;
  };

  struct DeferredDeletion {
    std::size_t entry_index = 0;
    ProofStep step;
  };

  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<TaggedWriter>> writers_;

  mutable std::mutex deferred_mu_;
  std::vector<DeferredDeletion> deferred_;   // parked, unsequenced
  std::vector<SequencedStep> released_;      // sequenced by note_collected
  std::vector<std::size_t> import_cursors_;  // per worker, via note_collected
};

}  // namespace berkmin::proof
