// Splicing per-worker proof traces into one checkable portfolio proof.
//
// A portfolio worker's trace is not checkable on its own: clauses imported
// from siblings appear in its derivations without a justification. The
// splicer fixes that by giving every worker a tagged ProofWriter whose
// additions carry the worker id and a global sequence number (one shared
// atomic counter), and by merging all per-worker buffers in sequence order
// after the race. The merged trace is a valid DRUP/DRAT proof of the
// shared formula because
//
//  * a clause is published to the exchange only after its addition was
//    logged, and an importer logs its (root-simplified) copy only after
//    collecting it, so every add appears after the adds it depends on —
//    the atomic counter's total order extends the export -> import
//    happens-before edges;
//  * deletions are suppressed: worker A deleting its copy of a lemma must
//    not remove the copy worker B's later derivations lean on, and a
//    database that only grows keeps every RUP step checkable (unit
//    propagation is monotone in the clause set). The cost is checker
//    memory proportional to the whole trace, which backward trimming
//    recovers after the fact.
//
// Thread safety: writer(i) must be wired to worker i only; each worker
// appends to its own buffer, and the only shared state is the sequence
// counter. spliced() may be called once every worker thread has joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "proof/proof.h"
#include "proof/proof_writer.h"

namespace berkmin::proof {

class ProofSplicer {
 public:
  explicit ProofSplicer(int num_workers);

  // The proof sink for worker `id`; owned by the splicer, valid for its
  // lifetime. Additions are tagged with `id`, deletions are dropped.
  ProofWriter* writer(int id);

  // Steps logged so far, across all workers (post-join use only).
  std::size_t total_steps() const;

  // Merges every worker's buffer into one trace ordered by the global
  // sequence. Call only while no worker is solving.
  Proof spliced() const;

 private:
  struct SequencedStep {
    std::uint64_t seq = 0;
    ProofStep step;
  };

  class TaggedWriter : public ProofWriter {
   public:
    TaggedWriter(ProofSplicer* owner, std::int32_t id)
        : owner_(owner), id_(id) {}
    void add_clause(std::span<const Lit> lits) override;
    void delete_clause(std::span<const Lit> lits) override;

   private:
    friend class ProofSplicer;
    ProofSplicer* owner_;
    std::int32_t id_;
    std::vector<SequencedStep> buffer_;
  };

  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<std::unique_ptr<TaggedWriter>> writers_;
};

}  // namespace berkmin::proof
