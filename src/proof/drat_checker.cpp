#include "proof/drat_checker.h"

#include <algorithm>
#include <cassert>

#include "cnf/simplify.h"
#include "telemetry/trace.h"

namespace berkmin::proof {

DratChecker::DratChecker(const Cnf& cnf) {
  ensure_var(cnf.num_vars() - 1);
  num_original_clauses_ = 0;

  // Store and attach every original clause first (nothing is assigned yet,
  // so any two literals may be watched), then seed propagation with the
  // units. A conflict here means the formula is refuted by unit
  // propagation alone.
  std::vector<std::uint32_t> units;
  for (std::size_t i = 0; i < cnf.num_clauses(); ++i) {
    auto normalized = normalize_clause(cnf.clause(i));
    if (!normalized) continue;  // tautology: can never matter
    const std::uint32_t id = store(*normalized, /*from_proof=*/false, i);
    DbClause& c = clauses_[id];
    if (c.lits.empty()) {
      record_empty_derivation({id});
    } else if (c.lits.size() == 1) {
      units.push_back(id);
    } else {
      attach(id);
    }
  }
  num_original_clauses_ = clauses_.size();
  if (derived_empty_) return;

  for (const std::uint32_t id : units) {
    const Lit l = clauses_[id].lits[0];
    const Value v = value(l);
    if (v == Value::true_value) continue;
    if (v == Value::false_value) {
      auto ants = collect_antecedents(invalid_clause, l.var());
      ants.push_back(id);
      record_empty_derivation(std::move(ants));
      return;
    }
    enqueue(l, id);
  }
  const std::uint32_t conflict = propagate();
  if (conflict != invalid_clause) {
    record_empty_derivation(collect_antecedents(conflict));
  }
}

void DratChecker::ensure_var(Var v) {
  if (v < 0) return;
  const std::size_t needed = static_cast<std::size_t>(v) + 1;
  if (assign_.size() >= needed) return;
  assign_.resize(needed, Value::unassigned);
  reason_.resize(needed, invalid_clause);
  seen_.resize(needed, 0);
  watches_.resize(2 * needed);
}

std::uint32_t DratChecker::store(const std::vector<Lit>& normalized,
                                 bool from_proof, std::size_t source) {
  for (const Lit l : normalized) ensure_var(l.var());
  const auto id = static_cast<std::uint32_t>(clauses_.size());
  DbClause c;
  c.lits = normalized;
  c.active = true;
  c.from_proof = from_proof;
  c.source = source;
  clauses_.push_back(std::move(c));
  if (live_index_built_) live_by_lits_[normalized].push_back(id);
  return id;
}

void DratChecker::ensure_live_index() {
  if (live_index_built_) return;
  live_index_built_ = true;
  // Ascending id order keeps each bucket youngest-last, which is the
  // order the deletion scan walks from the back.
  for (std::uint32_t id = 0; id < clauses_.size(); ++id) {
    if (clauses_[id].active) live_by_lits_[clauses_[id].lits].push_back(id);
  }
}

void DratChecker::attach(std::uint32_t id) {
  const DbClause& c = clauses_[id];
  assert(c.lits.size() >= 2);
  watches_[(~c.lits[0]).code()].push_back(id);
  watches_[(~c.lits[1]).code()].push_back(id);
}

void DratChecker::enqueue(Lit l, std::uint32_t reason) {
  assert(value(l) == Value::unassigned);
  assign_[static_cast<std::size_t>(l.var())] = to_value(l.is_positive());
  reason_[static_cast<std::size_t>(l.var())] = reason;
  trail_.push_back(l);
}

std::uint32_t DratChecker::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    std::vector<std::uint32_t>& list = watches_[p.code()];
    const Lit false_lit = ~p;

    std::size_t i = 0;
    std::size_t j = 0;
    while (i < list.size()) {
      const std::uint32_t id = list[i];
      DbClause& c = clauses_[id];
      if (!c.active) {
        ++i;  // deleted: drop the watcher on the way through
        continue;
      }
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      ++i;

      if (value(c.lits[0]) == Value::true_value) {
        list[j++] = id;
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != Value::false_value) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back(id);
          moved = true;
          break;
        }
      }
      if (moved) continue;

      list[j++] = id;
      if (value(c.lits[0]) == Value::false_value) {
        while (i < list.size()) list[j++] = list[i++];
        list.resize(j);
        propagate_head_ = trail_.size();
        return id;
      }
      enqueue(c.lits[0], id);
    }
    list.resize(j);
  }
  return invalid_clause;
}

void DratChecker::undo_to(std::size_t trail_size) {
  while (trail_.size() > trail_size) {
    const Var v = trail_.back().var();
    assign_[static_cast<std::size_t>(v)] = Value::unassigned;
    reason_[static_cast<std::size_t>(v)] = invalid_clause;
    trail_.pop_back();
  }
  propagate_head_ = trail_.size();
}

std::vector<std::uint32_t> DratChecker::collect_antecedents(
    std::uint32_t conflict, Var start) {
  std::vector<std::uint32_t> out;
  std::vector<Var> marked;

  const auto mark_clause = [&](std::uint32_t id) {
    out.push_back(id);
    for (const Lit l : clauses_[id].lits) {
      const Var v = l.var();
      if (!seen_[static_cast<std::size_t>(v)]) {
        seen_[static_cast<std::size_t>(v)] = 1;
        marked.push_back(v);
      }
    }
  };

  if (conflict != invalid_clause) {
    mark_clause(conflict);
  } else {
    assert(start != no_var);
    seen_[static_cast<std::size_t>(start)] = 1;
    marked.push_back(start);
  }

  for (std::size_t i = trail_.size(); i-- > 0;) {
    const Var v = trail_[i].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    const std::uint32_t reason = reason_[static_cast<std::size_t>(v)];
    if (reason != invalid_clause) mark_clause(reason);
  }

  for (const Var v : marked) seen_[static_cast<std::size_t>(v)] = 0;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool DratChecker::check_rup(const std::vector<Lit>& clause,
                            std::vector<std::uint32_t>* antecedents) {
  const std::size_t mark = trail_.size();

  // Assert the negation. A literal already true at the root contradicts
  // its own negation immediately — the antecedents are the reason chain
  // that forced it.
  for (const Lit l : clause) {
    const Value v = value(l);
    if (v == Value::true_value) {
      *antecedents = collect_antecedents(invalid_clause, l.var());
      undo_to(mark);
      return true;
    }
    if (v == Value::unassigned) enqueue(~l, invalid_clause);
  }

  const std::uint32_t conflict = propagate();
  if (conflict == invalid_clause) {
    undo_to(mark);
    return false;
  }
  *antecedents = collect_antecedents(conflict);
  undo_to(mark);
  return true;
}

void DratChecker::record_empty_derivation(
    std::vector<std::uint32_t> antecedents) {
  if (derived_empty_) return;
  derived_empty_ = true;
  std::sort(antecedents.begin(), antecedents.end());
  antecedents.erase(std::unique(antecedents.begin(), antecedents.end()),
                    antecedents.end());
  empty_antecedents_ = std::move(antecedents);
}

CheckResult DratChecker::check(const Proof& proof,
                               const CheckOptions& options) {
  CheckResult result;
  if (checked_) {
    result.error = "DratChecker instances are single-use; construct a new one";
    return result;
  }
  checked_ = true;

  // Forward pass under Phase::verify; the span event carries the verdict,
  // so it is emitted from every exit path.
  telemetry::PhaseScope verify_scope(telemetry_, telemetry::Phase::verify);
  const std::int64_t verify_start_ns =
      telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  const auto emit_verify = [&](const CheckResult& r) {
    if (telemetry_ == nullptr) return;
    telemetry_->emit(telemetry::EventKind::check_verify, verify_start_ns,
                     telemetry_->now_ns() - verify_start_ns, r.checked_adds,
                     r.valid ? 1 : 0);
  };

  // Live-database high-water mark: starts at the stored originals and
  // follows every addition/deletion the forward pass applies.
  std::size_t live = 0;
  for (const DbClause& c : clauses_) live += c.active ? 1 : 0;
  result.peak_live_clauses = live;

  for (std::size_t i = 0; i < proof.steps.size() && !derived_empty_; ++i) {
    const ProofStep& step = proof.steps[i];
    auto normalized = normalize_clause(step.lits);

    if (step.is_delete()) {
      ++result.deletions;
      if (!normalized) {
        ++result.skipped_deletions;
        continue;
      }
      // A clause that is the recorded reason of a root-trail literal must
      // survive: dropping it would leave a literal assigned that unit
      // propagation could no longer re-derive. Skipping such deletions
      // (drat-trim does the same for unit deletions) only strengthens the
      // database, so later checks stay sound. Deletions run at the root
      // fixpoint, so the reason table holds root reasons only.
      const auto is_root_reason = [&](std::uint32_t id) {
        for (const Lit l : clauses_[id].lits) {
          const auto v = static_cast<std::size_t>(l.var());
          if (assign_[v] != Value::unassigned && reason_[v] == id) return true;
        }
        return false;
      };
      ensure_live_index();
      const auto it = live_by_lits_.find(*normalized);
      std::uint32_t victim = invalid_clause;
      if (it != live_by_lits_.end()) {
        for (std::size_t k = it->second.size(); k-- > 0;) {
          const std::uint32_t id = it->second[k];
          if (clauses_[id].active && !is_root_reason(id)) {
            victim = id;
            it->second.erase(it->second.begin() +
                             static_cast<std::ptrdiff_t>(k));
            break;
          }
        }
      }
      if (victim == invalid_clause) {
        ++result.skipped_deletions;
        continue;
      }
      clauses_[victim].active = false;  // watchers are pruned lazily
      --live;
      continue;
    }

    // Addition: must be RUP against the current database.
    if (!normalized) continue;  // tautology: vacuously sound, never needed
    std::vector<std::uint32_t> antecedents;
    if (!check_rup(*normalized, &antecedents)) {
      if (options.allow_unverified_adds) {
        // Incremental traces: the step's derivation rested on clauses of a
        // group popped before the answer under certification. Dropping it
        // keeps the check sound — the clause never enters the live
        // database, so no later step can lean on it.
        ++result.skipped_adds;
        continue;
      }
      result.error = "step " + std::to_string(i) + ": clause is not RUP";
      result.derived_empty = false;
      emit_verify(result);
      return result;
    }
    ++result.checked_adds;

    if (normalized->empty()) {
      // check_rup on the empty clause succeeds only when the database
      // already propagates to a conflict, which record_empty_derivation
      // would have caught — defensive, not reachable for our traces.
      empty_producer_ = step.producer;
      record_empty_derivation(std::move(antecedents));
      break;
    }

    const std::uint32_t id = store(*normalized, /*from_proof=*/true, i);
    clauses_[id].antecedents = std::move(antecedents);
    if (++live > result.peak_live_clauses) result.peak_live_clauses = live;
    DbClause& c = clauses_[id];

    if (c.lits.size() == 1) {
      const Lit l = c.lits[0];
      const Value v = value(l);
      if (v == Value::false_value) {
        auto ants = collect_antecedents(invalid_clause, l.var());
        ants.push_back(id);
        empty_producer_ = step.producer;
        record_empty_derivation(std::move(ants));
      } else if (v == Value::unassigned) {
        enqueue(l, id);
        const std::uint32_t conflict = propagate();
        if (conflict != invalid_clause) {
          empty_producer_ = step.producer;
          record_empty_derivation(collect_antecedents(conflict));
        }
      }
      continue;
    }

    // Move two non-false literals into the watched slots. One non-false
    // literal means the clause is unit under the root assignment; zero is
    // unreachable after a successful RUP check (the negated clause would
    // have added no assumption and the fixpoint held no conflict).
    std::size_t found = 0;
    for (std::size_t k = 0; k < c.lits.size() && found < 2; ++k) {
      if (value(c.lits[k]) != Value::false_value) {
        std::swap(c.lits[found], c.lits[k]);
        ++found;
      }
    }
    attach(id);
    if (found == 0) {
      empty_producer_ = step.producer;
      record_empty_derivation(collect_antecedents(id));
    } else if (found == 1 && value(c.lits[0]) == Value::unassigned) {
      enqueue(c.lits[0], id);
      const std::uint32_t conflict = propagate();
      if (conflict != invalid_clause) {
        empty_producer_ = step.producer;
        record_empty_derivation(collect_antecedents(conflict));
      }
    }
  }

  result.derived_empty = derived_empty_;
  result.valid = derived_empty_;
  if (!result.valid && result.error.empty()) {
    result.error = "trace ended without deriving the empty clause";
  }
  emit_verify(result);
  if (result.valid) build_trim_and_core(proof);
  return result;
}

void DratChecker::build_trim_and_core(const Proof& proof) {
  telemetry::PhaseScope trim_scope(telemetry_, telemetry::Phase::trim);
  const std::int64_t trim_start_ns =
      telemetry_ != nullptr ? telemetry_->now_ns() : 0;
  std::vector<char> needed(clauses_.size(), 0);
  for (const std::uint32_t id : empty_antecedents_) needed[id] = 1;

  // Clause ids grow monotonically with step order, so a reverse id sweep
  // visits every addition after all the steps that could depend on it.
  for (std::size_t id = clauses_.size(); id-- > num_original_clauses_;) {
    if (!needed[id]) continue;
    for (const std::uint32_t a : clauses_[id].antecedents) needed[a] = 1;
  }

  core_.clear();
  for (std::size_t id = 0; id < num_original_clauses_; ++id) {
    if (needed[id]) core_.push_back(clauses_[id].source);
  }

  trimmed_.steps.clear();
  for (std::size_t id = num_original_clauses_; id < clauses_.size(); ++id) {
    if (!needed[id] || !clauses_[id].from_proof) continue;
    trimmed_.steps.push_back(proof.steps[clauses_[id].source]);
  }
  trimmed_.steps.push_back(ProofStep{StepKind::add, empty_producer_, {}});
  if (telemetry_ != nullptr) {
    telemetry_->emit(telemetry::EventKind::check_trim, trim_start_ns,
                     telemetry_->now_ns() - trim_start_ns,
                     trimmed_.steps.size(), core_.size());
  }
}

Cnf DratChecker::core_formula(const Cnf& original,
                              const std::vector<std::size_t>& core) {
  Cnf out(original.num_vars());
  for (const std::size_t index : core) out.add_clause(original.clause(index));
  return out;
}

}  // namespace berkmin::proof
