#include "proof/splice.h"

#include <algorithm>
#include <cassert>

namespace berkmin::proof {

namespace {

std::vector<std::int32_t> sorted_key(std::span<const Lit> lits) {
  std::vector<std::int32_t> key;
  key.reserve(lits.size());
  for (const Lit l : lits) key.push_back(l.code());
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace

ProofSplicer::ProofSplicer(int num_workers) {
  assert(num_workers >= 1);
  writers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    writers_.push_back(std::make_unique<TaggedWriter>(this, i));
  }
  import_cursors_.assign(static_cast<std::size_t>(num_workers), 0);
}

ProofWriter* ProofSplicer::writer(int id) {
  assert(id >= 0 && id < static_cast<int>(writers_.size()));
  return writers_[static_cast<std::size_t>(id)].get();
}

void ProofSplicer::note_published(int id, std::span<const Lit> lits,
                                  std::size_t entry_index) {
  assert(id >= 0 && id < static_cast<int>(writers_.size()));
  TaggedWriter& w = *writers_[static_cast<std::size_t>(id)];
  w.published_[sorted_key(lits)] = entry_index;
}

void ProofSplicer::note_collected(int id, std::size_t cursor) {
  assert(id >= 0 && id < static_cast<int>(writers_.size()));
  std::lock_guard<std::mutex> lock(deferred_mu_);
  std::size_t& noted = import_cursors_[static_cast<std::size_t>(id)];
  if (cursor <= noted) return;
  noted = cursor;
  std::size_t safe = noted;
  for (const std::size_t c : import_cursors_) safe = std::min(safe, c);
  // Sequence every parked deletion whose entry all workers have imported
  // past; a fresh sequence number places it after those copy-adds.
  std::size_t kept = 0;
  for (DeferredDeletion& d : deferred_) {
    if (d.entry_index < safe) {
      const std::uint64_t seq =
          next_seq_.fetch_add(1, std::memory_order_relaxed);
      released_.push_back(SequencedStep{seq, std::move(d.step)});
    } else {
      deferred_[kept++] = std::move(d);
    }
  }
  deferred_.resize(kept);
}

void ProofSplicer::TaggedWriter::add_clause(std::span<const Lit> lits) {
  ++added_;
  const std::uint64_t seq =
      owner_->next_seq_.fetch_add(1, std::memory_order_relaxed);
  buffer_.push_back(SequencedStep{
      seq, ProofStep{StepKind::add, id_, {lits.begin(), lits.end()}}});
}

void ProofSplicer::TaggedWriter::delete_clause(std::span<const Lit> lits) {
  ++deleted_;
  ProofStep step{StepKind::del, id_, {lits.begin(), lits.end()}};
  const auto it = published_.find(sorted_key(lits));
  if (it != published_.end()) {
    // A sibling may still be between collecting this clause and logging
    // its copy; park the deletion until note_collected() covers the entry.
    std::lock_guard<std::mutex> lock(owner_->deferred_mu_);
    owner_->deferred_.push_back(DeferredDeletion{it->second, std::move(step)});
    return;
  }
  const std::uint64_t seq =
      owner_->next_seq_.fetch_add(1, std::memory_order_relaxed);
  buffer_.push_back(SequencedStep{seq, std::move(step)});
}

std::size_t ProofSplicer::total_steps() const {
  std::size_t total = 0;
  for (const auto& w : writers_) total += w->buffer_.size();
  std::lock_guard<std::mutex> lock(deferred_mu_);
  return total + released_.size() + deferred_.size();
}

std::size_t ProofSplicer::deferred_deletions() const {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  return deferred_.size();
}

Proof ProofSplicer::spliced() const {
  std::lock_guard<std::mutex> lock(deferred_mu_);
  std::size_t buffered = released_.size();
  for (const auto& w : writers_) buffered += w->buffer_.size();
  std::vector<const SequencedStep*> all;
  all.reserve(buffered);
  for (const auto& w : writers_) {
    for (const SequencedStep& s : w->buffer_) all.push_back(&s);
  }
  for (const SequencedStep& s : released_) all.push_back(&s);
  std::sort(all.begin(), all.end(),
            [](const SequencedStep* a, const SequencedStep* b) {
              return a->seq < b->seq;
            });
  Proof out;
  out.steps.reserve(all.size() + deferred_.size());
  for (const SequencedStep* s : all) out.steps.push_back(s->step);
  // Still-parked deletions go at the tail: no later step can lean on the
  // deleted copies, so the trace stays checkable and the deletions stay
  // visible to consumers (and to backward trimming).
  for (const DeferredDeletion& d : deferred_) out.steps.push_back(d.step);
  return out;
}

}  // namespace berkmin::proof
