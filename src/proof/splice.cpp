#include "proof/splice.h"

#include <algorithm>
#include <cassert>

namespace berkmin::proof {

ProofSplicer::ProofSplicer(int num_workers) {
  assert(num_workers >= 1);
  writers_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    writers_.push_back(std::make_unique<TaggedWriter>(this, i));
  }
}

ProofWriter* ProofSplicer::writer(int id) {
  assert(id >= 0 && id < static_cast<int>(writers_.size()));
  return writers_[static_cast<std::size_t>(id)].get();
}

void ProofSplicer::TaggedWriter::add_clause(std::span<const Lit> lits) {
  ++added_;
  const std::uint64_t seq =
      owner_->next_seq_.fetch_add(1, std::memory_order_relaxed);
  buffer_.push_back(SequencedStep{
      seq, ProofStep{StepKind::add, id_, {lits.begin(), lits.end()}}});
}

void ProofSplicer::TaggedWriter::delete_clause(std::span<const Lit>) {
  // Suppressed: a sibling's derivation may still lean on this clause's
  // copy in the spliced database (see the header comment).
  ++deleted_;
}

std::size_t ProofSplicer::total_steps() const {
  std::size_t total = 0;
  for (const auto& w : writers_) total += w->buffer_.size();
  return total;
}

Proof ProofSplicer::spliced() const {
  std::vector<const SequencedStep*> all;
  all.reserve(total_steps());
  for (const auto& w : writers_) {
    for (const SequencedStep& s : w->buffer_) all.push_back(&s);
  }
  std::sort(all.begin(), all.end(),
            [](const SequencedStep* a, const SequencedStep* b) {
              return a->seq < b->seq;
            });
  Proof out;
  out.steps.reserve(all.size());
  for (const SequencedStep* s : all) out.steps.push_back(s->step);
  return out;
}

}  // namespace berkmin::proof
