// Clausal proof traces.
//
// A Proof is the ordered list of clause additions and deletions a solver
// (or a portfolio of solvers) performed after loading the original
// formula. Every addition our CDCL engine emits is a reverse-unit-
// propagation (RUP) consequence of the formula plus the earlier live
// additions, so the trace is a valid DRUP/DRAT proof: when it ends in the
// empty clause it certifies unsatisfiability, and DratChecker
// (drat_checker.h) can verify it without trusting the solver.
//
// Each step carries the id of the worker that produced it (-1 for a
// single-solver run); PortfolioSolver splices the per-worker traces of a
// parallel run into one Proof ordered by a global sequence number, and the
// producer tags survive so a checked step can be attributed to a worker.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cnf/literal.h"

namespace berkmin::proof {

// A worker id for steps emitted outside any portfolio.
inline constexpr std::int32_t no_producer = -1;

enum class StepKind : std::uint8_t {
  add,      // the clause is claimed RUP w.r.t. the live database
  del,      // one live copy of the clause is removed
};

struct ProofStep {
  StepKind kind = StepKind::add;
  std::int32_t producer = no_producer;
  std::vector<Lit> lits;  // empty for the final (empty-clause) addition

  bool is_add() const { return kind == StepKind::add; }
  bool is_delete() const { return kind == StepKind::del; }

  friend bool operator==(const ProofStep&, const ProofStep&) = default;
};

struct Proof {
  std::vector<ProofStep> steps;

  std::size_t size() const { return steps.size(); }
  bool empty() const { return steps.empty(); }

  std::size_t num_adds() const;
  std::size_t num_deletes() const;

  // True when the trace contains an addition of the empty clause — the
  // shape every complete unsatisfiability proof must have.
  bool ends_with_empty() const;

  void add(std::span<const Lit> lits, std::int32_t producer = no_producer) {
    steps.push_back(
        ProofStep{StepKind::add, producer, {lits.begin(), lits.end()}});
  }
  void del(std::span<const Lit> lits, std::int32_t producer = no_producer) {
    steps.push_back(
        ProofStep{StepKind::del, producer, {lits.begin(), lits.end()}});
  }
};

}  // namespace berkmin::proof
