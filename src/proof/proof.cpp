#include "proof/proof.h"

#include <algorithm>

namespace berkmin::proof {

std::size_t Proof::num_adds() const {
  return static_cast<std::size_t>(
      std::count_if(steps.begin(), steps.end(),
                    [](const ProofStep& s) { return s.is_add(); }));
}

std::size_t Proof::num_deletes() const {
  return steps.size() - num_adds();
}

bool Proof::ends_with_empty() const {
  return std::any_of(steps.begin(), steps.end(), [](const ProofStep& s) {
    return s.is_add() && s.lits.empty();
  });
}

}  // namespace berkmin::proof
