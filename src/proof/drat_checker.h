// In-tree DRAT proof checking, trimming and UNSAT-core extraction.
//
// DratChecker verifies a clausal proof against the original formula
// without trusting the solver that produced it: it is its own
// two-watched-literal propagation engine over the original clauses plus
// the proof's live additions. The check runs in two passes:
//
//  * forward — every added clause must be a reverse-unit-propagation
//    (RUP) consequence of the current database: asserting the negation of
//    its literals and propagating to fixpoint must yield a conflict. The
//    clauses touched by that conflict's resolution chain are recorded as
//    the step's antecedents. Deletions remove one live copy (deletions of
//    clauses that force a root literal are skipped, the standard DRUP
//    convention, which only grows the database and so never weakens a
//    later check).
//  * backward — starting from the antecedents of the empty clause, mark
//    every addition some marked step depends on. Unmarked additions are
//    dead weight: trimmed() returns the proof without them, and the
//    marked original clauses form an unsatisfiable core of the input.
//
// The engine checks strict RUP only — exactly what our CDCL solver (and
// any clause-learning solver that logs deletions) emits. RAT steps are
// rejected, which makes a successful check a stronger statement, not a
// weaker one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cnf/cnf_formula.h"
#include "cnf/literal.h"
#include "proof/proof.h"
#include "telemetry/solver_telemetry.h"

namespace berkmin::proof {

struct CheckOptions {
  // Incremental (push/pop) traces contain additions whose derivations
  // depended on clause groups that were popped before the answer being
  // certified: checked against the *current* formula those steps are not
  // RUP — and not needed, because every such lemma was deleted at its pop
  // and nothing live depends on it. With this flag an unverifiable
  // addition is skipped (never entering the live database, so soundness
  // is preserved: only RUP-verified clauses can support later steps)
  // instead of failing the check; skipped steps are counted in
  // CheckResult::skipped_adds. Validity still requires deriving the empty
  // clause from verified steps alone.
  bool allow_unverified_adds = false;
};

struct CheckResult {
  // True iff every addition verified as RUP and the empty clause was
  // derived — the proof certifies unsatisfiability of the formula.
  bool valid = false;
  bool derived_empty = false;
  std::size_t checked_adds = 0;
  std::size_t deletions = 0;
  // Deletions ignored: the clause forces a root literal, or no live copy
  // matched (a spliced trace may carry two workers' deletions of one
  // shared original; the second finds nothing live and is skipped).
  std::size_t skipped_deletions = 0;
  // High-water mark of live clauses (originals plus undeleted additions)
  // during the forward pass — the checker's working-set size. Deletions
  // in the trace are what keep this bounded on long multi-worker races.
  std::size_t peak_live_clauses = 0;
  // Additions that failed RUP and were dropped from the live database
  // (only under CheckOptions::allow_unverified_adds; otherwise the first
  // failed addition aborts the check).
  std::size_t skipped_adds = 0;
  // First failure, as "step <index>: <what>"; empty when valid.
  std::string error;
};

class DratChecker {
 public:
  explicit DratChecker(const Cnf& cnf);

  // Verifies the whole trace. May be called once per checker instance.
  CheckResult check(const Proof& proof) { return check(proof, CheckOptions{}); }
  CheckResult check(const Proof& proof, const CheckOptions& options);

  // Observability: times the forward pass (Phase::verify) and the
  // backward trim/core pass (Phase::trim) and emits check_verify /
  // check_trim span events. The sink must outlive the check() call.
  void set_telemetry(const telemetry::SolverTelemetry* sink) {
    telemetry_ = sink;
  }

  // Valid after a successful check(): the needed additions in original
  // order (producer tags preserved), ending with the empty clause.
  const Proof& trimmed() const { return trimmed_; }

  // Valid after a successful check(): indices into cnf.clauses() of the
  // original clauses the trimmed proof rests on, ascending. The induced
  // subformula is itself unsatisfiable.
  const std::vector<std::size_t>& core() const { return core_; }

  // Materializes a core as a formula over the same variable numbering.
  static Cnf core_formula(const Cnf& original,
                          const std::vector<std::size_t>& core);

 private:
  static constexpr std::uint32_t invalid_clause = 0xFFFFFFFFu;

  struct DbClause {
    std::vector<Lit> lits;  // normalized; watched literals in slots 0/1
    bool active = false;
    // Originals: index into cnf.clauses(); additions: proof step index.
    std::size_t source = 0;
    bool from_proof = false;
    // Clause ids whose unit consequences made this addition RUP.
    std::vector<std::uint32_t> antecedents;
  };

  void ensure_var(Var v);
  // Stores a normalized clause; returns its id, or invalid_clause for
  // tautologies (vacuous, never stored).
  std::uint32_t store(const std::vector<Lit>& normalized, bool from_proof,
                      std::size_t source);
  void attach(std::uint32_t id);
  Value value(Lit l) const {
    return value_of_literal(assign_[static_cast<std::size_t>(l.var())], l);
  }
  void enqueue(Lit l, std::uint32_t reason);
  // Propagates from the current head; returns the conflicting clause id
  // or invalid_clause. On conflict the head is left past the end so a
  // subsequent undo restores a consistent state.
  std::uint32_t propagate();
  void undo_to(std::size_t trail_size);
  // Collects the ids of every clause in the resolution chain of
  // `conflict` (or of the root assignment of `start`, when the conflict
  // is an assumption contradicting a root-true literal).
  std::vector<std::uint32_t> collect_antecedents(std::uint32_t conflict,
                                                 Var start = no_var);
  // Verifies one addition; fills *antecedents on success.
  bool check_rup(const std::vector<Lit>& clause,
                 std::vector<std::uint32_t>* antecedents);
  void ensure_live_index();
  void record_empty_derivation(std::vector<std::uint32_t> antecedents);
  void build_trim_and_core(const Proof& proof);

  std::size_t num_original_clauses_ = 0;
  std::vector<DbClause> clauses_;
  // Deletion lookup (normalized literals -> live clause ids), built
  // lazily on the first deletion: deletion-free traces never pay for it,
  // and the map costs a full literal-vector copy per stored clause.
  std::map<std::vector<Lit>, std::vector<std::uint32_t>> live_by_lits_;
  bool live_index_built_ = false;
  std::vector<std::vector<std::uint32_t>> watches_;  // by literal code
  std::vector<Value> assign_;                        // by variable
  std::vector<Lit> trail_;
  std::vector<std::uint32_t> reason_;  // by variable; invalid for assumptions
  std::size_t propagate_head_ = 0;
  std::vector<char> seen_;  // collect_antecedents scratch, by variable

  bool derived_empty_ = false;
  std::vector<std::uint32_t> empty_antecedents_;
  std::int32_t empty_producer_ = no_producer;

  bool checked_ = false;
  Proof trimmed_;
  std::vector<std::size_t> core_;
  const telemetry::SolverTelemetry* telemetry_ = nullptr;
};

}  // namespace berkmin::proof
