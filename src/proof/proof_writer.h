// Proof emission backends.
//
// A ProofWriter receives every clause addition and deletion a Solver
// performs (Solver::set_proof wires the engine's clause-lifecycle sites to
// it). Three backends cover the common shapes:
//
//  * TextDratWriter — the standard textual DRAT format ("d" prefix for
//    deletions, DIMACS literals, 0-terminated lines), readable by external
//    checkers such as drat-trim;
//  * BinaryDratWriter — drat-trim's compressed binary format ('a'/'d'
//    step bytes, variable-length 7-bit literal encoding), typically 3-5x
//    smaller than text on the same trace;
//  * MemoryProofWriter — buffers the trace as a proof::Proof so it can be
//    checked in-process (DratChecker), trimmed, or serialized later.
//
// Writers are not thread-safe; a portfolio run gives each worker its own
// writer through proof::ProofSplicer (splice.h).
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>

#include "cnf/literal.h"
#include "proof/proof.h"

namespace berkmin::proof {

class ProofWriter {
 public:
  virtual ~ProofWriter() = default;

  // Called with every clause the solver adds to / removes from its
  // database after loading; an empty `lits` addition is the final step of
  // an unsatisfiability proof.
  virtual void add_clause(std::span<const Lit> lits) = 0;
  virtual void delete_clause(std::span<const Lit> lits) = 0;

  std::uint64_t num_added() const { return added_; }
  std::uint64_t num_deleted() const { return deleted_; }

  // Short-write detection: stream-backed writers check the sink after
  // every step (and honor injected io_short_write faults) and latch a
  // failure instead of silently emitting a truncated trace — later steps
  // are dropped, ok() turns false and fail_reason() says what happened.
  // A trace from a failed writer must be treated as incomplete.
  // MemoryProofWriter buffers in-process and never fails.
  bool ok() const { return !failed_; }
  const std::string& fail_reason() const { return fail_reason_; }

 protected:
  void mark_failed(std::string reason) {
    if (!failed_) {
      failed_ = true;
      fail_reason_ = std::move(reason);
    }
  }

  std::uint64_t added_ = 0;
  std::uint64_t deleted_ = 0;
  bool failed_ = false;
  std::string fail_reason_;
};

class TextDratWriter : public ProofWriter {
 public:
  explicit TextDratWriter(std::ostream& out) : out_(out) {}

  void add_clause(std::span<const Lit> lits) override;
  void delete_clause(std::span<const Lit> lits) override;

 private:
  void write_lits(std::span<const Lit> lits);
  void check_stream();

  std::ostream& out_;
};

class BinaryDratWriter : public ProofWriter {
 public:
  explicit BinaryDratWriter(std::ostream& out) : out_(out) {}

  void add_clause(std::span<const Lit> lits) override;
  void delete_clause(std::span<const Lit> lits) override;

 private:
  void write_step(char tag, std::span<const Lit> lits);
  void check_stream();

  std::ostream& out_;
};

class MemoryProofWriter : public ProofWriter {
 public:
  // Steps recorded through this writer carry `producer` (a portfolio
  // worker id; no_producer for single-solver runs).
  explicit MemoryProofWriter(std::int32_t producer = no_producer)
      : producer_(producer) {}

  void add_clause(std::span<const Lit> lits) override {
    ++added_;
    proof_.add(lits, producer_);
  }
  void delete_clause(std::span<const Lit> lits) override {
    ++deleted_;
    proof_.del(lits, producer_);
  }

  const Proof& proof() const { return proof_; }
  Proof take_proof() { return std::move(proof_); }

 private:
  std::int32_t producer_;
  Proof proof_;
};

// Serializes a buffered proof through any writer (used to turn a checked
// or trimmed in-memory trace back into a DRAT file).
void replay(const Proof& proof, ProofWriter& writer);

}  // namespace berkmin::proof
