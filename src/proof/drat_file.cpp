#include "proof/drat_file.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "proof/proof_writer.h"

namespace berkmin::proof {

namespace {

bool read_text(std::istream& in, Proof* out, std::string* error) {
  std::string token;
  std::vector<Lit> lits;
  bool in_delete = false;
  bool in_clause = false;
  std::uint64_t line = 1;
  std::uint64_t offset = 0;  // bytes consumed; errors report the position

  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = "text DRAT, line " + std::to_string(line) + " (byte " +
               std::to_string(offset) + "): " + what;
    }
    return false;
  };
  const auto next = [&](char& ch) {
    if (!in.get(ch)) return false;
    ++offset;
    return true;
  };

  char c;
  while (next(c)) {
    if (c == '\n') ++line;
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == 'c' && !in_clause) {
      // Comment line (some tools emit them): skip to end of line.
      while (next(c) && c != '\n') {
      }
      ++line;
      continue;
    }
    if (c == 'd' && !in_clause) {
      in_delete = true;
      in_clause = true;
      continue;
    }
    if (c != '-' && !std::isdigit(static_cast<unsigned char>(c))) {
      return fail(std::string("unexpected character '") + c + "'");
    }
    token.clear();
    token.push_back(c);
    while (next(c) && std::isdigit(static_cast<unsigned char>(c))) {
      token.push_back(c);
    }
    if (in) {
      in.unget();
      --offset;
    }
    long long value = 0;
    try {
      value = std::stoll(token);
    } catch (const std::exception&) {
      return fail("bad literal '" + token + "'");
    }
    if (value == 0) {
      if (in_delete) {
        out->del(lits);
      } else {
        out->add(lits);
      }
      lits.clear();
      in_delete = false;
      in_clause = false;
    } else {
      in_clause = true;
      lits.push_back(from_dimacs(static_cast<int>(value)));
    }
  }
  if (in_clause) return fail("trace ends inside a clause (missing 0)");
  return true;
}

bool read_binary(std::istream& in, Proof* out, std::string* error) {
  std::uint64_t offset = 0;  // bytes consumed; errors report the position
  const auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error =
          "binary DRAT (byte " + std::to_string(offset) + "): " + what;
    }
    return false;
  };

  char tag;
  std::vector<Lit> lits;
  while (in.get(tag)) {
    ++offset;
    const bool is_delete = tag == 'd';
    if (!is_delete && tag != 'a') {
      return fail("bad step tag byte " +
                  std::to_string(static_cast<unsigned char>(tag)));
    }
    lits.clear();
    for (;;) {
      std::uint32_t mapped = 0;
      int shift = 0;
      char byte;
      bool more = true;
      while (more) {
        if (!in.get(byte)) return fail("trace ends inside a step");
        ++offset;
        const auto b = static_cast<unsigned char>(byte);
        if (shift >= 32) return fail("literal varint overflows 32 bits");
        mapped |= static_cast<std::uint32_t>(b & 0x7Fu) << shift;
        shift += 7;
        more = (b & 0x80u) != 0;
      }
      if (mapped == 0) break;  // step terminator
      const int magnitude = static_cast<int>(mapped >> 1);
      if (magnitude == 0) return fail("literal maps to variable 0");
      lits.push_back(from_dimacs((mapped & 1u) != 0 ? -magnitude : magnitude));
    }
    if (is_delete) {
      out->del(lits);
    } else {
      out->add(lits);
    }
  }
  return true;
}

}  // namespace

bool read_drat(std::istream& in, DratFormat format, Proof* out,
               std::string* error) {
  return format == DratFormat::text ? read_text(in, out, error)
                                    : read_binary(in, out, error);
}

bool read_drat_file(const std::string& path, Proof* out, std::string* error,
                    DratFormat* detected) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "'";
    return false;
  }
  // No textual trace starts with an 'a', and no textual trace contains a
  // 0x00 byte or a byte with the high bit set — while every binary step
  // ends with a 0x00 terminator within a couple of bytes per literal and
  // large literals carry high-bit continuation bytes. Scanning a prefix
  // for those is decisive, unlike peeking at the first two bytes (which
  // confuses "d 1 ..." with a binary 'd' tag whose first varint byte
  // happens to be 0x20 or 0x09).
  DratFormat format = DratFormat::text;
  char buffer[4096];
  in.read(buffer, sizeof buffer);
  const std::streamsize prefix = in.gcount();
  if (prefix > 0 && buffer[0] == 'a') format = DratFormat::binary;
  for (std::streamsize i = 0; i < prefix && format == DratFormat::text; ++i) {
    const auto b = static_cast<unsigned char>(buffer[i]);
    if (b == 0x00 || b >= 0x80) format = DratFormat::binary;
  }
  in.clear();
  in.seekg(0);
  if (detected != nullptr) *detected = format;
  return read_drat(in, format, out, error);
}

void write_drat(std::ostream& out, const Proof& proof, DratFormat format) {
  if (format == DratFormat::text) {
    TextDratWriter writer(out);
    replay(proof, writer);
  } else {
    BinaryDratWriter writer(out);
    replay(proof, writer);
  }
}

bool write_drat_file(const std::string& path, const Proof& proof,
                     DratFormat format, std::string* error) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    if (error != nullptr) *error = "cannot open '" + path + "' for writing";
    return false;
  }
  // Short writes (including injected io_short_write faults inside the
  // writers) latch the stream's failbit, so the post-flush check below
  // reports them as a structured error instead of a truncated file.
  write_drat(out, proof, format);
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write to '" + path + "' failed";
    return false;
  }
  return true;
}

}  // namespace berkmin::proof
