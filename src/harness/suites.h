// Instance suites mirroring the paper's benchmark classes.
//
// Twelve classes appear in Tables 1/2/4/5 (and the per-class comparisons
// of Tables 6/7): Hole, Blocksworld, Par16, Sss1.0, Sss1.0a, Sss_sat1.0,
// Fvp_unsat1.0, Vliw_sat1.0, Beijing, Hanoi, Miters, Fvp_unsat2.0. The
// original CNF files are not redistributable here, so each class is
// populated by the structurally matching generator (see DESIGN.md's
// substitution table). `scale` grows the instances: 1 = seconds-per-class
// smoke scale, 2-3 = progressively closer to paper hardness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cnf/cnf_formula.h"
#include "gen/registry.h"

namespace berkmin::harness {

struct Instance {
  std::string name;
  Cnf cnf;
  gen::Expectation expected = gen::Expectation::unknown;
};

struct Suite {
  std::string name;
  std::vector<Instance> instances;
};

// All twelve classes in the paper's table order.
std::vector<Suite> paper_classes(int scale, std::uint64_t seed);

// One class by its paper name ("Hole", "Beijing", ...); throws on unknown.
Suite suite_by_name(const std::string& name, int scale, std::uint64_t seed);

// The five hard instances of Table 3 (skin effect), in the paper's
// numbering: 1 = miter, 2 = hanoi, 3 = beijing/adder, 4 = pipe (fvp-like),
// 5 = vliw-like.
std::vector<Instance> skin_effect_instances(int scale, std::uint64_t seed);

// The per-instance rows of Tables 8/9 (hanoi + pipe family members).
std::vector<Instance> detail_instances(int scale, std::uint64_t seed);

// A mixed "competition finals" suite for Table 10.
std::vector<Instance> competition_suite(int scale, std::uint64_t seed);

}  // namespace berkmin::harness
