#include "harness/runner.h"

#include "util/table.h"
#include "util/timer.h"

namespace berkmin::harness {

RunResult run_instance(const Instance& instance, const SolverOptions& options,
                       double timeout_seconds) {
  RunResult result;
  result.name = instance.name;

  Solver solver(options);
  solver.load(instance.cnf);

  WallTimer timer;
  result.status = solver.solve(Budget::wall_clock(timeout_seconds));
  result.seconds = timer.seconds();
  result.stats = solver.stats();
  result.timed_out = result.status == SolveStatus::unknown;

  if (result.status == SolveStatus::satisfiable) {
    // Always validate models against the original formula.
    if (!instance.cnf.is_satisfied_by(solver.model())) {
      result.expectation_violated = true;
    }
    if (instance.expected == gen::Expectation::unsat) {
      result.expectation_violated = true;
    }
  } else if (result.status == SolveStatus::unsatisfiable &&
             instance.expected == gen::Expectation::sat) {
    result.expectation_violated = true;
  }
  return result;
}

std::string ClassResult::format_time(double timeout_seconds) const {
  if (aborted == 0) return format_seconds(finished_seconds);
  const double lower_bound = finished_seconds + aborted * timeout_seconds;
  return "> " + format_seconds(lower_bound) + " (" + std::to_string(aborted) + ")";
}

ClassResult run_suite(const Suite& suite, const SolverOptions& options,
                      double timeout_seconds) {
  ClassResult result;
  result.class_name = suite.name;
  for (const Instance& instance : suite.instances) {
    RunResult run = run_instance(instance, options, timeout_seconds);
    ++result.num_instances;
    if (run.timed_out) {
      ++result.aborted;
    } else {
      ++result.solved;
      result.finished_seconds += run.seconds;
    }
    if (run.expectation_violated) ++result.wrong;
    result.runs.push_back(std::move(run));
  }
  return result;
}

ClassResult total_row(const std::vector<ClassResult>& rows) {
  ClassResult total;
  total.class_name = "Total";
  for (const ClassResult& row : rows) {
    total.num_instances += row.num_instances;
    total.solved += row.solved;
    total.aborted += row.aborted;
    total.wrong += row.wrong;
    total.finished_seconds += row.finished_seconds;
  }
  return total;
}

}  // namespace berkmin::harness
