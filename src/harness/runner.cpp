#include "harness/runner.h"

#include "portfolio/portfolio.h"
#include "util/table.h"
#include "util/timer.h"

namespace berkmin::harness {

namespace {

// Shared scoring against the generator's expectation, once a status and
// (for satisfiable answers) a model are known.
void score_result(RunResult* result, const Instance& instance,
                  const std::vector<Value>& model) {
  result->timed_out = result->status == SolveStatus::unknown;
  if (result->status == SolveStatus::satisfiable) {
    // Always validate models against the original formula.
    if (!instance.cnf.is_satisfied_by(model)) {
      result->expectation_violated = true;
    }
    if (instance.expected == gen::Expectation::unsat) {
      result->expectation_violated = true;
    }
  } else if (result->status == SolveStatus::unsatisfiable &&
             instance.expected == gen::Expectation::sat) {
    result->expectation_violated = true;
  }
}

RunResult run_instance_portfolio(const Instance& instance,
                                 const SolverOptions& options,
                                 double timeout_seconds, int threads) {
  RunResult result;
  result.name = instance.name;

  portfolio::PortfolioOptions popts;
  popts.num_threads = threads;
  popts.base_seed = options.seed;
  popts.configs = portfolio::diversify_around(options, threads, options.seed);
  portfolio::PortfolioSolver solver(popts);
  solver.load(instance.cnf);

  WallTimer timer;
  result.status = solver.solve(Budget::wall_clock(timeout_seconds));
  result.seconds = timer.seconds();
  if (solver.winner() >= 0) {
    result.stats = solver.reports()[solver.winner()].stats;
  }
  result.stats.exported_clauses = solver.clauses_exported();
  result.stats.imported_clauses = solver.clauses_imported();
  score_result(&result, instance, solver.model());
  return result;
}

}  // namespace

RunResult run_instance(const Instance& instance, const SolverOptions& options,
                       double timeout_seconds, int threads) {
  if (threads > 1) {
    return run_instance_portfolio(instance, options, timeout_seconds, threads);
  }
  RunResult result;
  result.name = instance.name;

  Solver solver(options);
  solver.load(instance.cnf);

  WallTimer timer;
  result.status = solver.solve(Budget::wall_clock(timeout_seconds));
  result.seconds = timer.seconds();
  result.stats = solver.stats();
  score_result(&result, instance, solver.model());
  return result;
}

std::string ClassResult::format_time(double timeout_seconds) const {
  if (aborted == 0) return format_seconds(finished_seconds);
  const double lower_bound = finished_seconds + aborted * timeout_seconds;
  return "> " + format_seconds(lower_bound) + " (" + std::to_string(aborted) + ")";
}

ClassResult run_suite(const Suite& suite, const SolverOptions& options,
                      double timeout_seconds, int threads) {
  ClassResult result;
  result.class_name = suite.name;
  for (const Instance& instance : suite.instances) {
    RunResult run = run_instance(instance, options, timeout_seconds, threads);
    ++result.num_instances;
    if (run.timed_out) {
      ++result.aborted;
    } else {
      ++result.solved;
      result.finished_seconds += run.seconds;
    }
    if (run.expectation_violated) ++result.wrong;
    result.runs.push_back(std::move(run));
  }
  return result;
}

ClassResult run_suite_service(const Suite& suite, const SolverOptions& options,
                              double timeout_seconds,
                              const service::ServiceOptions& service_options,
                              int job_threads) {
  service::SolverService solving(service_options);

  std::vector<service::JobId> ids;
  ids.reserve(suite.instances.size());
  for (const Instance& instance : suite.instances) {
    service::JobRequest request;
    request.name = instance.name;
    request.cnf = instance.cnf;
    request.options = options;
    request.limits.deadline_seconds = timeout_seconds;
    request.limits.threads = job_threads;
    // submit() only fails after shutdown, which cannot have happened yet.
    ids.push_back(*solving.submit(std::move(request)));
  }

  ClassResult result;
  result.class_name = suite.name;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const service::JobResult job = solving.wait(ids[i]);
    const Instance& instance = suite.instances[i];

    RunResult run;
    run.name = instance.name;
    run.status = job.status;
    run.seconds = job.solve_seconds;
    run.stats.conflicts = job.conflicts;
    run.stats.decisions = job.decisions;
    run.stats.propagations = job.propagations;
    run.stats.learned_clauses = job.learned_clauses;
    run.stats.max_live_clauses = job.max_live_clauses;
    run.stats.initial_clauses = job.initial_clauses;
    score_result(&run, instance, job.model);

    ++result.num_instances;
    if (run.timed_out) {
      ++result.aborted;
    } else {
      ++result.solved;
      result.finished_seconds += run.seconds;
    }
    if (run.expectation_violated) ++result.wrong;
    result.runs.push_back(std::move(run));
  }
  solving.shutdown(service::SolverService::Shutdown::drain);
  return result;
}

ClassResult total_row(const std::vector<ClassResult>& rows) {
  ClassResult total;
  total.class_name = "Total";
  for (const ClassResult& row : rows) {
    total.num_instances += row.num_instances;
    total.solved += row.solved;
    total.aborted += row.aborted;
    total.wrong += row.wrong;
    total.finished_seconds += row.finished_seconds;
  }
  return total;
}

}  // namespace berkmin::harness
