#include "harness/suites.h"

#include <algorithm>
#include <stdexcept>

#include "gen/adder_bench.h"
#include "gen/blocksworld.h"
#include "gen/bmc.h"
#include "gen/hanoi.h"
#include "gen/miters.h"
#include "gen/parity.h"
#include "gen/pigeonhole.h"
#include "gen/pipe.h"

// Calibration note. Instance sizes were chosen empirically on this
// substrate so that, at the default bench scale (2), each class costs the
// BerkMin configuration between tenths of a second and a few seconds —
// hard enough for the heuristic ablations to separate, small enough that
// a full table sweep finishes in minutes. Scale 1 is the smoke scale used
// by the test suite (everything well under a second); scale 3+ grows
// instances toward genuinely paper-hard territory (minutes, with aborts
// expected for the weaker configurations).
namespace berkmin::harness {
namespace {

using gen::Expectation;

Instance make(std::string name, Cnf cnf, Expectation expected) {
  return Instance{std::move(name), std::move(cnf), expected};
}

Suite hole_suite(int scale) {
  Suite s{"Hole", {}};
  // scale 1: hole4..hole7; scale 2: hole5..hole9; scale 3: hole6..hole11.
  const int lo = 3 + scale;
  const int hi = 5 + 2 * scale;
  for (int holes = lo; holes <= hi; ++holes) {
    s.instances.push_back(make("hole" + std::to_string(holes),
                               gen::pigeonhole(holes), Expectation::unsat));
  }
  return s;
}

Suite blocksworld_suite(int scale, std::uint64_t seed) {
  Suite s{"Blocksworld", {}};
  const int blocks = 4 + 2 * scale;
  for (int i = 0; i < 3; ++i) {
    gen::BlocksworldParams p;
    p.num_blocks = blocks;
    p.horizon = blocks + 2 + i;
    p.satisfiable = true;
    p.seed = seed + i;
    s.instances.push_back(make("bw_sat_" + std::to_string(i),
                               gen::blocksworld_instance(p), Expectation::sat));
  }
  {
    gen::BlocksworldParams p;
    p.num_blocks = blocks;
    p.horizon = 2;  // below the misplaced-block lower bound
    p.satisfiable = false;
    p.seed = seed + 17;
    s.instances.push_back(make("bw_unsat",
                               gen::blocksworld_instance(p), Expectation::unsat));
  }
  return s;
}

Suite parity_suite(int scale, std::uint64_t seed) {
  Suite s{"Par16", {}};
  const int vars = 16 * scale;
  const int eq_size = 4 + scale / 2;
  for (int i = 0; i < 2; ++i) {
    gen::ParityParams p;
    p.num_vars = vars;
    p.num_equations = vars + vars / 2;
    p.equation_size = eq_size;
    p.satisfiable = true;
    p.seed = seed + i;
    s.instances.push_back(make("par_sat_" + std::to_string(i),
                               gen::parity_instance(p), Expectation::sat));
  }
  for (int i = 0; i < 2; ++i) {
    gen::ParityParams p;
    p.num_vars = vars;
    p.num_equations = vars + vars / 2;
    p.equation_size = eq_size;
    p.satisfiable = false;
    p.seed = seed + 100 + i;
    s.instances.push_back(make("par_unsat_" + std::to_string(i),
                               gen::parity_instance(p), Expectation::unsat));
  }
  return s;
}

gen::BmcParams bmc_params(int cycles, int gates, int latches, int inputs,
                          bool equivalent, std::uint64_t seed) {
  gen::BmcParams p;
  p.cycles = cycles;
  p.num_gates = gates;
  p.num_latches = latches;
  p.num_inputs = inputs;
  p.equivalent = equivalent;
  p.seed = seed;
  return p;
}

Suite sss10_suite(int scale, std::uint64_t seed) {
  Suite s{"Sss1.0", {}};
  for (int i = 0; i < 3; ++i) {
    s.instances.push_back(
        make("sss_" + std::to_string(i),
             gen::bmc_instance(bmc_params(2 + 2 * scale, 60 * scale,
                                          4 + 2 * scale, 6, true, seed + i)),
             Expectation::unsat));
  }
  return s;
}

Suite sss10a_suite(int scale, std::uint64_t seed) {
  Suite s{"Sss1.0a", {}};
  for (int i = 0; i < 2; ++i) {
    s.instances.push_back(
        make("sssa_" + std::to_string(i),
             gen::bmc_instance(bmc_params(3 + 2 * scale, 80 * scale,
                                          6 + 2 * scale, 7, true,
                                          seed + 31 + i)),
             Expectation::unsat));
  }
  return s;
}

Suite sss_sat_suite(int scale, std::uint64_t seed) {
  Suite s{"Sss_sat1.0", {}};
  for (int i = 0; i < 3; ++i) {
    s.instances.push_back(
        make("ssssat_" + std::to_string(i),
             gen::bmc_instance(bmc_params(2 + 2 * scale, 70 * scale,
                                          4 + 2 * scale, 6, false,
                                          seed + 61 + i)),
             Expectation::sat));
  }
  return s;
}

gen::PipeParams pipe_params(int width, int stages, bool correct,
                            std::uint64_t seed, bool with_multiplier,
                            bool swap_spec) {
  gen::PipeParams p;
  p.width = width;
  p.stages = stages;
  p.correct = correct;
  p.seed = seed;
  p.with_multiplier = with_multiplier;
  p.swap_spec_operands = swap_spec;
  return p;
}

Suite fvp_unsat1_suite(int scale, std::uint64_t seed) {
  Suite s{"Fvp_unsat1.0", {}};
  // Multiplier datapaths without operand swap: moderately hard.
  s.instances.push_back(make(
      "fvp1_a",
      gen::pipe_instance(pipe_params(5 + scale, 2, true, seed, true, false)),
      Expectation::unsat));
  s.instances.push_back(make(
      "fvp1_b",
      gen::pipe_instance(pipe_params(6 + scale, 2, true, seed + 1, true, false)),
      Expectation::unsat));
  return s;
}

Suite vliw_sat_suite(int scale, std::uint64_t seed) {
  Suite s{"Vliw_sat1.0", {}};
  for (int i = 0; i < 3; ++i) {
    s.instances.push_back(
        make("vliw_" + std::to_string(i),
             gen::pipe_instance(pipe_params(5 + scale, 3, false, seed + i,
                                            true, true)),
             Expectation::sat));
  }
  return s;
}

Suite beijing_suite(int scale, std::uint64_t seed) {
  // The Beijing class is a robustness mix of "easy" arithmetic CNFs.
  Suite s{"Beijing", {}};
  const int width = 12 * scale;
  s.instances.push_back(make(
      std::to_string(width) + "bitadd_swap_rs",
      gen::adder_equivalence(width, gen::AdderPair::ripple_vs_select, true),
      Expectation::unsat));
  s.instances.push_back(make(
      std::to_string(width) + "bitadd_swap_rl",
      gen::adder_equivalence(width, gen::AdderPair::ripple_vs_lookahead, true),
      Expectation::unsat));
  s.instances.push_back(make(
      "mult" + std::to_string(3 + scale),
      gen::multiplier_equivalence(3 + scale, 1), Expectation::unsat));
  s.instances.push_back(make(
      std::to_string(width) + "bitadd_mut",
      gen::adder_mutation(width, gen::AdderPair::ripple_vs_select, seed),
      Expectation::sat));
  s.instances.push_back(make("adder_sum",
                             gen::adder_target_sum(8 * scale, seed + 7),
                             Expectation::sat));
  return s;
}

Suite hanoi_suite(int scale, std::uint64_t /*seed*/) {
  Suite s{"Hanoi", {}};
  const int max_disks = 4 + scale;  // scale 2 -> hanoi6, scale 3 -> hanoi7
  for (int d = 4; d <= max_disks; ++d) {
    s.instances.push_back(
        make("hanoi" + std::to_string(d),
             gen::hanoi_instance(d, gen::HanoiEncoding::optimal_moves(d)),
             Expectation::sat));
  }
  return s;
}

Suite miters_suite(int scale, std::uint64_t seed) {
  Suite s{"Miters", {}};
  // XOR-rich artificial circuits against globally reassociated rewrites:
  // the miter proof needs parity reasoning, and gate count / xor share
  // are the "complexity easy to control" knobs the paper describes.
  const int inputs = 14 + scale;
  const int gates = 200 * scale;
  for (int i = 0; i < 3; ++i) {
    gen::MiterParams p;
    p.num_inputs = inputs;
    p.num_gates = gates;
    p.num_outputs = 4;
    p.xor_fraction = 0.6;
    p.equivalent = true;
    p.seed = seed + 2 * i;
    s.instances.push_back(make("miter" + std::to_string(inputs) + "_" +
                                   std::to_string(gates) + "_" +
                                   std::to_string(i),
                               gen::miter_instance(p), Expectation::unsat));
  }
  // One arithmetic miter (differently scheduled multipliers).
  s.instances.push_back(make("mult" + std::to_string(3 + scale) + "_rows",
                             gen::multiplier_equivalence(3 + scale, 1),
                             Expectation::unsat));
  return s;
}

Suite fvp_unsat2_suite(int scale, std::uint64_t seed) {
  Suite s{"Fvp_unsat2.0", {}};
  // The "Npipe" family: multiplier datapath, operand-swapped reference,
  // growing pipeline depth. Hard; ablated configurations abort here.
  // Width saturates at 8: beyond that every configuration times out and
  // the class stops differentiating.
  const int width = std::min(8, 6 + scale);
  for (int stages = 2; stages <= 2 + scale; ++stages) {
    s.instances.push_back(
        make(std::to_string(stages) + "pipe",
             gen::pipe_instance(pipe_params(width, stages, true,
                                            seed + stages, true, true)),
             Expectation::unsat));
  }
  return s;
}

}  // namespace

std::vector<Suite> paper_classes(int scale, std::uint64_t seed) {
  std::vector<Suite> suites;
  suites.push_back(hole_suite(scale));
  suites.push_back(blocksworld_suite(scale, seed));
  suites.push_back(parity_suite(scale, seed));
  suites.push_back(sss10_suite(scale, seed));
  suites.push_back(sss10a_suite(scale, seed));
  suites.push_back(sss_sat_suite(scale, seed));
  suites.push_back(fvp_unsat1_suite(scale, seed));
  suites.push_back(vliw_sat_suite(scale, seed));
  suites.push_back(beijing_suite(scale, seed));
  suites.push_back(hanoi_suite(scale, seed));
  suites.push_back(miters_suite(scale, seed));
  suites.push_back(fvp_unsat2_suite(scale, seed));
  return suites;
}

Suite suite_by_name(const std::string& name, int scale, std::uint64_t seed) {
  for (Suite& suite : paper_classes(scale, seed)) {
    if (suite.name == name) return std::move(suite);
  }
  throw std::invalid_argument("suite_by_name: unknown class '" + name + "'");
}

std::vector<Instance> skin_effect_instances(int scale, std::uint64_t seed) {
  std::vector<Instance> out;
  out.push_back(make("miter70_60_5",
                     gen::multiplier_equivalence(4 + scale, 0),
                     Expectation::unsat));
  out.push_back(make("hanoi" + std::to_string(4 + scale),
                     gen::hanoi_instance(4 + scale,
                                         gen::HanoiEncoding::optimal_moves(4 + scale)),
                     Expectation::sat));
  out.push_back(make("2bitadd_10",
                     gen::adder_equivalence(12 * scale,
                                            gen::AdderPair::ripple_vs_lookahead,
                                            true),
                     Expectation::unsat));
  out.push_back(make("7pipe",
                     gen::pipe_instance(pipe_params(6 + scale, 3, true,
                                                    seed + 3, true, true)),
                     Expectation::unsat));
  out.push_back(make("9vliw",
                     gen::pipe_instance(pipe_params(5 + scale, 2, true,
                                                    seed + 4, true, false)),
                     Expectation::unsat));
  return out;
}

std::vector<Instance> detail_instances(int scale, std::uint64_t seed) {
  std::vector<Instance> out;
  out.push_back(make("9vliw_bp_mc",
                     gen::pipe_instance(pipe_params(5 + scale, 3, true, seed,
                                                    true, false)),
                     Expectation::unsat));
  for (int d = 4; d <= 4 + scale; ++d) {
    out.push_back(make("hanoi" + std::to_string(d),
                       gen::hanoi_instance(d, gen::HanoiEncoding::optimal_moves(d)),
                       Expectation::sat));
  }
  const int width = 6 + scale;
  for (int stages = 2; stages <= 2 + scale; ++stages) {
    out.push_back(make(std::to_string(stages) + "pipe",
                       gen::pipe_instance(pipe_params(width, stages, true,
                                                      seed + stages, true,
                                                      true)),
                       Expectation::unsat));
  }
  return out;
}

std::vector<Instance> competition_suite(int scale, std::uint64_t seed) {
  std::vector<Instance> out;
  // A robustness mix across families, harder than the class suites.
  out.push_back(make("hole_big", gen::pigeonhole(6 + 2 * scale),
                     Expectation::unsat));
  {
    gen::ParityParams p;
    p.num_vars = 24 * scale;
    p.num_equations = p.num_vars * 3 / 2;
    p.equation_size = 5;
    p.satisfiable = false;
    p.seed = seed;
    out.push_back(make("par_hard", gen::parity_instance(p), Expectation::unsat));
  }
  out.push_back(make("comb_like", gen::multiplier_equivalence(4 + scale, 3),
                     Expectation::unsat));
  out.push_back(make("6pipe_like",
                     gen::pipe_instance(pipe_params(6 + scale, 3 + scale, true,
                                                    seed + 2, true, true)),
                     Expectation::unsat));
  out.push_back(make("ip_like",
                     gen::bmc_instance(bmc_params(3 + 2 * scale, 90 * scale,
                                                  6 + 2 * scale, 7, true,
                                                  seed + 3)),
                     Expectation::unsat));
  out.push_back(make("w08_like",
                     gen::bmc_instance(bmc_params(3 + 2 * scale, 90 * scale,
                                                  6 + 2 * scale, 7, false,
                                                  seed + 4)),
                     Expectation::sat));
  out.push_back(make("hanoi_deep",
                     gen::hanoi_instance(4 + scale,
                                         gen::HanoiEncoding::optimal_moves(4 + scale)),
                     Expectation::sat));
  {
    gen::BlocksworldParams p;
    p.num_blocks = 5 + 2 * scale;
    p.horizon = p.num_blocks + 3;
    p.satisfiable = true;
    p.seed = seed + 5;
    out.push_back(make("bw_big", gen::blocksworld_instance(p), Expectation::sat));
  }
  return out;
}

}  // namespace berkmin::harness
