// Experiment runner: solves suites under per-instance timeouts and
// aggregates results the way the paper's tables report them (total time
// over finished instances, plus "> total (k aborted)" rows).
#pragma once

#include <string>
#include <vector>

#include "core/options.h"
#include "core/solver.h"
#include "harness/suites.h"
#include "service/solver_service.h"

namespace berkmin::harness {

struct RunResult {
  std::string name;
  SolveStatus status = SolveStatus::unknown;
  bool timed_out = false;
  bool expectation_violated = false;  // solved but disagreed with generator
  double seconds = 0.0;
  SolverStats stats;
};

// `threads` > 1 solves through a portfolio whose worker 0 keeps `options`
// unchanged and whose other workers jitter only the restart/decay schedule
// and seed (portfolio::diversify_around), so comparisons across options
// stay meaningful. Clause-sharing totals land in stats.exported_clauses /
// stats.imported_clauses (summed over workers).
RunResult run_instance(const Instance& instance, const SolverOptions& options,
                       double timeout_seconds, int threads = 1);

struct ClassResult {
  std::string class_name;
  int num_instances = 0;
  int solved = 0;
  int aborted = 0;
  int wrong = 0;  // expectation violations (must stay 0)
  double finished_seconds = 0.0;  // sum over solved instances
  std::vector<RunResult> runs;

  // The paper's convention: finished time, or "> S (k)" where S adds the
  // timeout for every aborted instance.
  std::string format_time(double timeout_seconds) const;
};

ClassResult run_suite(const Suite& suite, const SolverOptions& options,
                      double timeout_seconds, int threads = 1);

// Routes a whole suite through a time-sliced SolverService instead of
// one-shot solvers: every instance is submitted as a job (deadline =
// timeout_seconds) and the service's worker pool interleaves them, so one
// hard instance cannot serialize the batch. `job_threads` > 1 escalates
// each job to a portfolio run of that many workers inside its slices.
// Results are scored exactly like run_suite's.
ClassResult run_suite_service(const Suite& suite, const SolverOptions& options,
                              double timeout_seconds,
                              const service::ServiceOptions& service_options,
                              int job_threads = 1);

// Sums class results into a "Total" row (aborts propagate).
ClassResult total_row(const std::vector<ClassResult>& rows);

}  // namespace berkmin::harness
