// Shared CLI surface for the robustness features: --memory-budget and the
// --fault-* flags, used by dimacs_solver and batch_solver.
//
// The helpers translate flag values into a util::MemoryBudget (graceful
// degradation tiers instead of bad_alloc) and an installed
// util::FaultInjector (deterministic, seeded, bounded fault schedules for
// robustness drills). Both are optional: absent flags yield null and the
// binaries behave exactly as before.
#pragma once

#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "util/cli.h"
#include "util/fault.h"
#include "util/memory_budget.h"

namespace berkmin::robustness {

inline void add_flags(ArgParser* args) {
  args->add_option("memory-budget", "", "cap the bytes charged by clause "
                   "storage (e.g. 64M, 1G); under pressure the solvers "
                   "degrade in tiers (aggressive reduction, inprocessing "
                   "off, no-learn restarts) instead of dying on bad_alloc");
  args->add_option("fault-sites", "", "arm deterministic fault injection at "
                   "these comma-separated sites (alloc_clause, "
                   "alloc_exchange, worker_stall, worker_death, slice_death, "
                   "clock_skew, io_short_write, or 'all')");
  args->add_option("fault-rate", "0.05", "per-consultation firing "
                   "probability for armed fault sites");
  args->add_option("fault-seed", "1", "seed of the fault schedule (the same "
                   "seed replays the same faults)");
  args->add_option("fault-fires", "8", "cap on fires per armed site; bounded "
                   "injection keeps every run terminating with a checkable "
                   "answer");
}

// --memory-budget → a MemoryBudget, or nullptr when the flag is absent.
// Returns false (with a message on stderr) on a malformed size.
inline bool budget_from_args(const ArgParser& args,
                             std::unique_ptr<util::MemoryBudget>* out) {
  const std::string text = args.get_string("memory-budget");
  if (text.empty()) return true;
  std::uint64_t bytes = 0;
  if (!util::parse_size_bytes(text, &bytes)) {
    std::cerr << "error: malformed --memory-budget '" << text
              << "' (want e.g. 64M, 1G, 1048576)\n";
    return false;
  }
  *out = std::make_unique<util::MemoryBudget>(bytes);
  return true;
}

// --fault-* → an injector (not yet installed), or nullptr when no site is
// armed. Returns false (with a message on stderr) on an unknown site.
inline bool injector_from_args(const ArgParser& args,
                               std::unique_ptr<util::FaultInjector>* out) {
  const std::string sites = args.get_string("fault-sites");
  if (sites.empty()) return true;
  util::FaultPlan plan;
  plan.seed = static_cast<std::uint64_t>(args.get_int("fault-seed"));
  const double rate = args.get_double("fault-rate");
  const auto fires = static_cast<std::uint32_t>(args.get_int("fault-fires"));
  std::istringstream list(sites);
  std::string name;
  while (std::getline(list, name, ',')) {
    if (name.empty()) continue;
    if (name == "all") {
      for (int s = 0; s < static_cast<int>(util::FaultSite::kCount); ++s) {
        plan.arm(static_cast<util::FaultSite>(s), rate, fires);
      }
      continue;
    }
    util::FaultSite site;
    if (!util::parse_fault_site(name, &site)) {
      std::cerr << "error: unknown fault site '" << name
                << "' (alloc_clause, alloc_exchange, worker_stall, "
                   "worker_death, slice_death, clock_skew, io_short_write, "
                   "all)\n";
      return false;
    }
    plan.arm(site, rate, fires);
  }
#ifndef BERKMIN_FAULTS
  std::cerr << "warning: built without BERKMIN_FAULTS; --fault-sites is "
               "inert (fault points compile to no-ops)\n";
#endif
  *out = std::make_unique<util::FaultInjector>(plan);
  return true;
}

// Installs the injector for the process lifetime and restores the prior
// one on destruction (the CLIs hold it for the whole run).
struct InstalledInjector {
  util::FaultInjector* previous = nullptr;
  bool active = false;

  void install(util::FaultInjector* injector) {
    if (injector == nullptr) return;
    previous = util::install_fault_injector(injector);
    active = true;
  }
  ~InstalledInjector() {
    if (active) util::install_fault_injector(previous);
  }
};

}  // namespace berkmin::robustness
