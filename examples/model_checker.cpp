// Safety model checking over generated transition systems: BMC and
// IC3/PDR driving the incremental solver (or a SolverService session) as
// a real workload.
//
//   ./build/examples/model_checker --ts safe:12 --engine both --certify
//   ./build/examples/model_checker --ts unsafe:4 --engine bmc --bound 12
//   ./build/examples/model_checker --ts latch:7 --engine ic3 --service --threads 2
//
// --ts specs:
//   safe:<seed>[:latches[:inputs]]     bad unreachable (BFS-certified)
//   unsafe:<seed>[:latches[:inputs]]   bad reachable within the bound
//   latch:<seed>[:latches[:inputs]]    latch-heavy safe variant
//
// Exit codes: 0 verdicts OK (validated/certified as requested), 1 usage
// error, 2 a validation or certification failed, 3 engines disagree.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/solver.h"
#include "engines/bmc.h"
#include "engines/ic3.h"
#include "gen/safety.h"
#include "service/solver_service.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace berkmin;
using namespace berkmin::engines;

namespace {

bool parse_ts_spec(const std::string& spec, int bound, gen::SafetyParams* out,
                   std::string* error) {
  std::vector<std::string> parts;
  std::string current;
  for (const char ch : spec) {
    if (ch == ':') {
      parts.push_back(current);
      current.clear();
    } else {
      current += ch;
    }
  }
  parts.push_back(current);

  gen::SafetyParams p;
  p.cycles = bound;
  if (parts[0] == "safe") {
    p.safe = true;
  } else if (parts[0] == "unsafe") {
    p.safe = false;
  } else if (parts[0] == "latch") {
    p.safe = true;
    p.latch_heavy = true;
    p.num_latches = 8;
    p.num_inputs = 3;
  } else {
    *error = "unknown --ts family '" + parts[0] + "' (safe|unsafe|latch)";
    return false;
  }
  try {
    if (parts.size() > 1) p.seed = std::stoull(parts[1]);
    if (parts.size() > 2) p.num_latches = std::stoi(parts[2]);
    if (parts.size() > 3) p.num_inputs = std::stoi(parts[3]);
  } catch (const std::exception&) {
    *error = "non-numeric field in --ts spec '" + spec + "'";
    return false;
  }
  *out = p;
  return true;
}

void print_result(const std::string& engine, const EngineResult& result,
                  double seconds) {
  std::cout << engine << ": " << to_string(result.verdict)
            << " (bound " << result.bound << ")";
  if (result.cex.has_value()) {
    std::cout << ", counterexample depth " << result.cex->depth()
              << (result.cex_validated ? " (replayed in simulation)"
                                       : " (REPLAY FAILED)");
  }
  if (result.verdict == Verdict::safe_invariant) {
    std::cout << ", invariant of " << result.invariant.size() << " clauses";
  }
  if (result.certified) std::cout << ", certified";
  if (!result.error.empty()) std::cout << ", error: " << result.error;
  std::cout << "  [" << seconds << " s, " << result.stats.solves
            << " solves, " << result.stats.pushes << " pushes, "
            << result.stats.pops << " pops]\n";
}

void print_json(const std::string& engine, const EngineResult& result,
                double seconds) {
  std::cout << "{\"engine\":\"" << engine << "\",\"verdict\":\""
            << to_string(result.verdict) << "\",\"bound\":" << result.bound
            << ",\"cex_depth\":"
            << (result.cex.has_value() ? result.cex->depth() : -1)
            << ",\"cex_validated\":" << (result.cex_validated ? "true" : "false")
            << ",\"certified\":" << (result.certified ? "true" : "false")
            << ",\"invariant_clauses\":" << result.invariant.size()
            << ",\"solves\":" << result.stats.solves
            << ",\"pushes\":" << result.stats.pushes
            << ",\"pops\":" << result.stats.pops
            << ",\"obligations\":" << result.stats.obligations
            << ",\"seconds\":" << seconds << "}\n";
}

// A verdict is acceptable when it is conclusive and its evidence checks
// out (trace replay for unsafe; certification when requested).
bool verdict_ok(const EngineResult& result, bool certify) {
  switch (result.verdict) {
    case Verdict::unsafe:
      return result.cex_validated;
    case Verdict::safe_bounded:
    case Verdict::safe_invariant:
      return !certify || result.certified;
    case Verdict::unknown:
      return false;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("ts", "safe:1", "transition-system spec (see header)");
  args.add_option("engine", "both", "bmc | ic3 | both");
  args.add_option("bound", "10", "BMC bound / generator cycle window");
  args.add_option("max-frames", "64", "IC3 frontier limit");
  args.add_flag("certify", "independently certify safe verdicts");
  args.add_flag("service", "run via a SolverService incremental session");
  args.add_option("threads", "1", "session threads (portfolio when > 1)");
  args.add_flag("json", "emit one JSON object per engine run");
  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n"
              << args.help("model_checker — BMC / IC3 over generated "
                           "safety properties");
    return 1;
  }

  const std::string engine = args.get_string("engine");
  if (engine != "bmc" && engine != "ic3" && engine != "both") {
    std::cerr << "error: --engine must be bmc, ic3 or both\n";
    return 1;
  }
  const int bound = static_cast<int>(args.get_int("bound"));
  const bool certify = args.has_flag("certify");
  const bool json = args.has_flag("json");

  gen::SafetyParams params;
  std::string spec_error;
  if (!parse_ts_spec(args.get_string("ts"), bound, &params, &spec_error)) {
    std::cerr << "error: " << spec_error << "\n";
    return 1;
  }

  std::unique_ptr<TransitionSystem> ts;
  try {
    ts = std::make_unique<TransitionSystem>(gen::safety_system(params));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
  if (!json) {
    std::cout << "transition system: " << ts->num_latches() << " latches, "
              << ts->num_inputs() << " inputs ("
              << (params.safe ? "safe" : "unsafe") << " by construction)\n";
  }

  std::unique_ptr<service::SolverService> service;
  const auto make_backend = [&](const std::string& name)
      -> std::unique_ptr<EngineBackend> {
    if (args.has_flag("service")) {
      if (service == nullptr) {
        service = std::make_unique<service::SolverService>(
            service::ServiceOptions{.num_workers = 2});
      }
      service::SessionRequest request;
      request.name = name;
      request.threads = static_cast<int>(args.get_int("threads"));
      return std::make_unique<SessionBackend>(*service, request);
    }
    return nullptr;  // caller builds a SolverBackend over its own Solver
  };

  int exit_code = 0;
  std::vector<Verdict> verdicts;
  const auto run_engine = [&](const std::string& name) {
    Solver solver;
    std::unique_ptr<EngineBackend> session = make_backend(name);
    SolverBackend local(solver);
    EngineBackend& backend = session != nullptr ? *session : local;

    WallTimer timer;
    EngineResult result;
    if (name == "bmc") {
      result = BmcEngine(*ts, backend,
                         {.bound = bound, .certify = certify}).run();
    } else {
      Ic3Options options;
      options.max_frames = static_cast<int>(args.get_int("max-frames"));
      options.certify = certify;
      result = Ic3Engine(*ts, backend, options).run();
    }
    const double seconds = timer.seconds();
    if (json) {
      print_json(name, result, seconds);
    } else {
      print_result(name, result, seconds);
    }
    if (!verdict_ok(result, certify)) exit_code = 2;
    verdicts.push_back(result.verdict);
  };

  if (engine == "bmc" || engine == "both") run_engine("bmc");
  if (engine == "ic3" || engine == "both") run_engine("ic3");

  if (verdicts.size() == 2) {
    const bool bmc_unsafe = verdicts[0] == Verdict::unsafe;
    const bool ic3_unsafe = verdicts[1] == Verdict::unsafe;
    // safe_bounded vs safe_invariant agree; unsafe must match unsafe.
    if (bmc_unsafe != ic3_unsafe && verdicts[0] != Verdict::unknown &&
        verdicts[1] != Verdict::unknown) {
      std::cerr << "error: engines disagree (bmc " << to_string(verdicts[0])
                << ", ic3 " << to_string(verdicts[1]) << ")\n";
      return 3;
    }
  }
  return exit_code;
}
