// Explores the paper's benchmark classes interactively: runs one class
// (or every class) under any preset, printing per-instance statistics —
// the quickest way to see how instance structure drives the heuristics.
//
//   ./build/examples/class_runner --class Hanoi --preset chaff --scale 2
//   ./build/examples/class_runner --all --timeout 5
#include <iostream>

#include "cnf/cnf_stats.h"
#include "harness/runner.h"
#include "harness/suites.h"
#include "util/cli.h"
#include "util/table.h"

using namespace berkmin;

namespace {

int run_class(const harness::Suite& suite, const SolverOptions& options,
              double timeout, int threads, int pool) {
  std::cout << "== " << suite.name << " ==\n";
  Table table({"Instance", "Shape", "Status", "Time (s)", "Decisions",
               "Conflicts", "Learned", "Peak DB"});
  int violations = 0;

  std::vector<harness::RunResult> runs;
  if (pool > 1) {
    // Batch mode: the whole class goes through one time-sliced
    // SolverService so instances interleave over the pool; --threads
    // escalates each job to a portfolio of that size inside its slices.
    service::ServiceOptions sopts;
    sopts.num_workers = pool;
    runs = harness::run_suite_service(suite, options, timeout, sopts, threads)
               .runs;
  } else {
    for (const harness::Instance& instance : suite.instances) {
      runs.push_back(harness::run_instance(instance, options, timeout, threads));
    }
  }

  for (std::size_t i = 0; i < runs.size(); ++i) {
    const harness::RunResult& run = runs[i];
    const CnfStats shape = compute_stats(suite.instances[i].cnf);
    if (run.expectation_violated) ++violations;
    table.add_row({run.name,
                   std::to_string(shape.num_vars) + "v/" +
                       std::to_string(shape.num_clauses) + "c",
                   run.timed_out ? "timeout" : to_string(run.status),
                   format_seconds(run.seconds),
                   format_count(run.stats.decisions),
                   format_count(run.stats.conflicts),
                   format_count(run.stats.learned_clauses),
                   format_ratio(run.stats.db_peak_ratio())});
  }
  std::cout << table.to_string() << "\n";
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("class", "Hanoi",
                  "class name: Hole, Blocksworld, Par16, Sss1.0, Sss1.0a, "
                  "Sss_sat1.0, Fvp_unsat1.0, Vliw_sat1.0, Beijing, Hanoi, "
                  "Miters, Fvp_unsat2.0");
  args.add_option("preset", "berkmin", "solver preset (see dimacs_solver)");
  args.add_option("scale", "2", "instance scale");
  args.add_option("timeout", "10", "per-instance timeout in seconds");
  args.add_option("seed", "7", "generator seed");
  args.add_option("threads", "1", "portfolio workers per solve");
  args.add_option("pool", "1",
                  "batch the class through a time-sliced SolverService with "
                  "this many worker threads (1 = solve instances one by one)");
  args.add_flag("all", "run every class");
  args.add_flag("help", "show this help");
  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  if (args.has_flag("help")) {
    std::cout << args.help("class_runner — explore the paper's benchmark classes");
    return 0;
  }

  SolverOptions options = SolverOptions::berkmin();
  const std::string preset = args.get_string("preset");
  if (preset == "chaff") options = SolverOptions::chaff_like();
  if (preset == "limmat") options = SolverOptions::limmat_like();
  if (preset == "less_sensitivity") options = SolverOptions::less_sensitivity();
  if (preset == "less_mobility") options = SolverOptions::less_mobility();
  if (preset == "limited_keeping") options = SolverOptions::limited_keeping();

  const int scale = static_cast<int>(args.get_int("scale"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const double timeout = args.get_double("timeout");
  const int threads = static_cast<int>(args.get_int("threads"));
  const int pool = static_cast<int>(args.get_int("pool"));

  int violations = 0;
  try {
    if (args.has_flag("all")) {
      for (const harness::Suite& suite : harness::paper_classes(scale, seed)) {
        violations += run_class(suite, options, timeout, threads, pool);
      }
    } else {
      violations += run_class(
          harness::suite_by_name(args.get_string("class"), scale, seed),
          options, timeout, threads, pool);
    }
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
  if (violations > 0) {
    std::cerr << "ERROR: " << violations << " expectation violations\n";
    return 1;
  }
  return 0;
}
