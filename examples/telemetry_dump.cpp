// Pretty-prints a Prometheus metrics dump written by dimacs_solver /
// batch_solver --metrics-out (or any scrape of MetricsSnapshot's text
// exposition) as aligned tables, in the style of the paper-table bench
// drivers.
//
//   ./build/examples/telemetry_dump run.prom
//
// Exit codes: 0 on success, 1 on unreadable input or a malformed sample
// line.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/table.h"

using namespace berkmin;

namespace {

struct Sample {
  std::string name;
  std::string label_key;    // empty when unlabeled
  std::string label_value;
  double value = 0.0;
};

// One exposition line: `name[{key="value"}] value`. Comment and blank
// lines return true with *ok untouched; malformed sample lines set *ok to
// false.
bool parse_line(const std::string& line, Sample* sample) {
  std::size_t pos = 0;
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t')) {
    ++pos;
  }
  const std::size_t name_start = pos;
  while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
  if (pos == name_start) return false;
  sample->name = line.substr(name_start, pos - name_start);
  sample->label_key.clear();
  sample->label_value.clear();

  if (pos < line.size() && line[pos] == '{') {
    const std::size_t eq = line.find('=', pos);
    const std::size_t open_quote = line.find('"', pos);
    const std::size_t close_quote =
        open_quote == std::string::npos ? std::string::npos
                                        : line.find('"', open_quote + 1);
    const std::size_t close = line.find('}', pos);
    if (eq == std::string::npos || open_quote == std::string::npos ||
        close_quote == std::string::npos || close == std::string::npos ||
        !(pos < eq && eq < open_quote && open_quote < close_quote &&
          close_quote < close)) {
      return false;
    }
    sample->label_key = line.substr(pos + 1, eq - pos - 1);
    sample->label_value =
        line.substr(open_quote + 1, close_quote - open_quote - 1);
    pos = close + 1;
  }

  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  try {
    sample->value = std::stod(line.substr(pos));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string format_value(double v) {
  if (v == static_cast<double>(static_cast<std::uint64_t>(v)) && v >= 0.0) {
    return format_count(static_cast<std::uint64_t>(v));
  }
  std::ostringstream out;
  out.precision(6);
  out << v;
  return out.str();
}

struct Summary {
  std::map<std::string, double> quantiles;  // by quantile label
  double sum = 0.0;
  double count = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_flag("help", "show this help");
  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  if (args.has_flag("help") || args.positional().empty()) {
    std::cout << args.help(
        "telemetry_dump — render a Prometheus metrics dump as tables");
    return args.has_flag("help") ? 0 : 1;
  }

  const std::string path = args.positional()[0];
  std::ifstream in(path);
  if (!in) {
    std::cerr << "error: cannot open '" << path << "'\n";
    return 1;
  }

  std::vector<Sample> samples;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    Sample sample;
    if (!parse_line(line, &sample)) {
      std::cerr << "error: " << path << ":" << line_number
                << ": malformed sample line\n";
      return 1;
    }
    samples.push_back(std::move(sample));
  }

  // Classify. Quantile-labeled samples define the summaries; their base
  // name then claims the matching _sum/_count. Phase counters carry a
  // phase label. Everything else: _total = counter, bare = gauge.
  std::map<std::string, Summary> summaries;
  for (const Sample& s : samples) {
    if (s.label_key == "quantile") {
      summaries[s.name].quantiles[s.label_value] = s.value;
    }
  }
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, double> phase_seconds;
  std::map<std::string, double> phase_calls;
  for (const Sample& s : samples) {
    if (s.label_key == "quantile") continue;
    if (s.label_key == "phase") {
      (s.name == "berkmin_phase_seconds_total" ? phase_seconds
                                               : phase_calls)[s.label_value] =
          s.value;
      continue;
    }
    if (ends_with(s.name, "_sum") &&
        summaries.count(s.name.substr(0, s.name.size() - 4)) != 0) {
      summaries[s.name.substr(0, s.name.size() - 4)].sum = s.value;
      continue;
    }
    if (ends_with(s.name, "_count") &&
        summaries.count(s.name.substr(0, s.name.size() - 6)) != 0) {
      summaries[s.name.substr(0, s.name.size() - 6)].count = s.value;
      continue;
    }
    (ends_with(s.name, "_total") ? counters : gauges)[s.name] = s.value;
  }

  if (!counters.empty()) {
    Table table({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.add_row({name, format_value(value)});
    }
    std::cout << table.to_string() << "\n";
  }
  if (!gauges.empty()) {
    Table table({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      table.add_row({name, format_value(value)});
    }
    std::cout << table.to_string() << "\n";
  }
  if (!summaries.empty()) {
    Table table({"latency", "count", "mean", "p50", "p90", "p99"});
    for (const auto& [name, summary] : summaries) {
      const double mean =
          summary.count > 0.0 ? summary.sum / summary.count : 0.0;
      const auto quantile = [&](const char* q) {
        const auto it = summary.quantiles.find(q);
        return it == summary.quantiles.end() ? std::string("-")
                                             : format_value(it->second);
      };
      table.add_row({name, format_value(summary.count), format_value(mean),
                     quantile("0.5"), quantile("0.9"), quantile("0.99")});
    }
    std::cout << table.to_string() << "\n";
  }
  if (!phase_seconds.empty() || !phase_calls.empty()) {
    Table table({"phase", "calls", "seconds"});
    for (const auto& [name, seconds] : phase_seconds) {
      const auto calls = phase_calls.find(name);
      table.add_row({name,
                     calls == phase_calls.end()
                         ? std::string("-")
                         : format_value(calls->second),
                     format_seconds(seconds)});
    }
    std::cout << table.to_string() << "\n";
  }
  if (counters.empty() && gauges.empty() && summaries.empty() &&
      phase_seconds.empty()) {
    std::cerr << "error: no metrics found in '" << path << "'\n";
    return 1;
  }
  return 0;
}
