// Quickstart: build a formula through the API, solve it with the BerkMin
// configuration, and inspect the model and search statistics.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/solver.h"

using namespace berkmin;

int main() {
  // The formula from Section 2 of the paper:
  //   (a | ~b)(b | ~c | y)(c | ~d | x)(c | d)
  // with x and y forced to 0 — satisfiable, but branching a=0 reproduces
  // the conflict the paper walks through.
  Solver solver(SolverOptions::berkmin());

  const Var a = solver.new_var();
  const Var b = solver.new_var();
  const Var c = solver.new_var();
  const Var d = solver.new_var();
  const Var x = solver.new_var();
  const Var y = solver.new_var();

  solver.add_clause({Lit::positive(a), Lit::negative(b)});
  solver.add_clause({Lit::positive(b), Lit::negative(c), Lit::positive(y)});
  solver.add_clause({Lit::positive(c), Lit::negative(d), Lit::positive(x)});
  solver.add_clause({Lit::positive(c), Lit::positive(d)});
  solver.add_clause({Lit::negative(x)});
  solver.add_clause({Lit::negative(y)});

  const SolveStatus status = solver.solve(Budget::wall_clock(5.0));
  std::printf("status: %s\n", to_string(status));

  if (status == SolveStatus::satisfiable) {
    const char* names[] = {"a", "b", "c", "d", "x", "y"};
    for (Var v = 0; v < solver.num_vars(); ++v) {
      std::printf("  %s = %d\n", names[v],
                  solver.model_value(Lit::positive(v)) ? 1 : 0);
    }
  }

  const SolverStats& stats = solver.stats();
  std::printf("decisions=%llu conflicts=%llu propagations=%llu learned=%llu\n",
              static_cast<unsigned long long>(stats.decisions),
              static_cast<unsigned long long>(stats.conflicts),
              static_cast<unsigned long long>(stats.propagations),
              static_cast<unsigned long long>(stats.learned_clauses));
  return status == SolveStatus::satisfiable ? 0 : 1;
}
