// A complete command-line SAT solver over DIMACS files (or generated
// instances), in the mold of the released BerkMin56 binary.
//
//   ./build/examples/dimacs_solver formula.cnf
//   ./build/examples/dimacs_solver --generate hole:8 --preset chaff
//   ./build/examples/dimacs_solver formula.cnf --drat proof.out --stats
//   ./build/examples/dimacs_solver --generate hole:6 --threads 4 \
//       --drat proof.out --unsat-core core.cnf --check-model
//
// Exit codes follow the SAT-competition convention: 10 = satisfiable,
// 20 = unsatisfiable, 0 = unknown/budget, 1 = usage error or failed
// --check-model / proof verification.
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>

#include "cnf/dimacs.h"
#include "cnf/icnf.h"
#include "cnf/preprocess.h"
#include "core/solver.h"
#include "gen/registry.h"
#include "portfolio/portfolio.h"
#include "proof/drat_checker.h"
#include "proof/drat_file.h"
#include "proof/proof_writer.h"
#include "robustness_flags.h"
#include "telemetry/telemetry.h"
#include "util/cli.h"
#include "util/memory_budget.h"
#include "util/timer.h"

using namespace berkmin;

namespace {

SolverOptions preset_by_name(const std::string& name, bool* ok) {
  *ok = true;
  if (name == "berkmin") return SolverOptions::berkmin();
  if (name == "chaff") return SolverOptions::chaff_like();
  if (name == "limmat") return SolverOptions::limmat_like();
  if (name == "less_sensitivity") return SolverOptions::less_sensitivity();
  if (name == "less_mobility") return SolverOptions::less_mobility();
  if (name == "limited_keeping") return SolverOptions::limited_keeping();
  if (name == "sat_top") return SolverOptions::with_polarity(PolarityPolicy::sat_top);
  if (name == "unsat_top") return SolverOptions::with_polarity(PolarityPolicy::unsat_top);
  if (name == "take_0") return SolverOptions::with_polarity(PolarityPolicy::take_0);
  if (name == "take_1") return SolverOptions::with_polarity(PolarityPolicy::take_1);
  if (name == "take_rand") return SolverOptions::with_polarity(PolarityPolicy::take_rand);
  *ok = false;
  return SolverOptions::berkmin();
}

// Flushes the requested telemetry artifacts on destruction, so every exit
// path — including early errors — writes what was collected. A metrics
// path ending in ".prom" gets Prometheus text exposition, anything else
// the JSON snapshot.
struct TelemetryWriter {
  telemetry::Telemetry* hub = nullptr;
  std::string metrics_path;
  std::string trace_path;
  telemetry::TraceFormat format = telemetry::TraceFormat::chrome;

  ~TelemetryWriter() {
    if (hub == nullptr) return;
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "error: cannot open '" << metrics_path
                  << "' for metrics\n";
      } else {
        const telemetry::MetricsSnapshot snapshot = hub->snapshot();
        out << (metrics_path.ends_with(".prom") ? snapshot.to_prometheus()
                                                : snapshot.to_json());
      }
    }
    if (!trace_path.empty()) {
      std::string error;
      if (!hub->write_trace_file(trace_path, format, &error)) {
        std::cerr << "error: " << error << "\n";
      }
    }
  }
};

// --check-model: refuse to announce a model the formula rejects. Prints
// the SAT-competition "unknown" verdict on failure; the caller exits 1.
bool model_checks_out(const Cnf& cnf, const std::vector<Value>& model) {
  if (cnf.is_satisfied_by(model)) return true;
  std::cout << "s UNKNOWN\n";
  std::cerr << "error: model failed --check-model validation\n";
  return false;
}

// Verifies an UNSAT trace with the in-tree checker and writes the
// requested artifacts: the (possibly spliced) DRAT file and/or the
// original-clause unsatisfiable core as DIMACS. Returns false after
// printing an error when verification or a write fails.
bool certify_unsat(const Cnf& cnf, const proof::Proof& trace,
                   const std::string& drat_path, proof::DratFormat format,
                   const std::string& core_path,
                   const telemetry::SolverTelemetry* sink) {
  std::string error;
  if (!drat_path.empty() &&
      !proof::write_drat_file(drat_path, trace, format, &error)) {
    std::cerr << "error: " << error << "\n";
    return false;
  }
  if (core_path.empty()) return true;

  proof::DratChecker checker(cnf);
  checker.set_telemetry(sink);
  const proof::CheckResult check = checker.check(trace);
  if (!check.valid) {
    std::cerr << "error: proof failed verification (" << check.error
              << ") — refusing to extract a core\n";
    return false;
  }
  std::cout << "c proof: " << trace.size() << " steps, "
            << check.checked_adds << " additions verified, trimmed to "
            << checker.trimmed().num_adds() << " adds; core "
            << checker.core().size() << " of " << cnf.num_clauses()
            << " clauses\n";
  try {
    dimacs::write_file(core_path,
                       proof::DratChecker::core_formula(cnf, checker.core()),
                       "unsat core extracted by dimacs_solver");
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return false;
  }
  std::cout << "c wrote core to " << core_path << "\n";
  return true;
}

SolverOptions options_from_args(const ArgParser& args, bool* ok) {
  SolverOptions options = preset_by_name(args.get_string("preset"), ok);
  if (!*ok) {
    std::cerr << "error: unknown preset '" << args.get_string("preset") << "'\n";
    return options;
  }
  options.restart_interval = static_cast<std::uint32_t>(args.get_int("restart"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.minimize_learned = args.has_flag("minimize");
  options.young_keep_max_length = static_cast<std::uint32_t>(args.get_int("young-max-len"));
  options.young_keep_min_activity = static_cast<std::uint32_t>(args.get_int("young-min-act"));
  options.old_keep_max_length = static_cast<std::uint32_t>(args.get_int("old-max-len"));
  options.old_activity_threshold = static_cast<std::uint32_t>(args.get_int("old-act-threshold"));
  options.var_decay_interval = static_cast<std::uint32_t>(args.get_int("decay-interval"));
  options.var_decay_factor = static_cast<std::uint32_t>(args.get_int("decay-factor"));
  // Inprocessing defaults ON for the CLI (the library default is off so
  // embedders opt in); --no-inprocess restores the pure paper engine.
  options.inprocess.enabled = !args.has_flag("no-inprocess");
  if (const std::string policy = args.get_string("reduce-policy");
      !policy.empty()) {
    if (policy == "glue") {
      options.reduction_policy = ReductionPolicy::glue_tiered;
    } else if (policy == "berkmin") {
      options.reduction_policy = ReductionPolicy::berkmin;
    } else if (policy == "limited") {
      options.reduction_policy = ReductionPolicy::limited_keeping;
    } else if (policy == "none") {
      options.reduction_policy = ReductionPolicy::none;
    } else {
      std::cerr << "error: unknown --reduce-policy '" << policy
                << "' (berkmin, glue, limited, none)\n";
      *ok = false;
    }
  }
  return options;
}

// Scripted (.icnf) mode: replay an incremental push/add/pop/solve script
// against one persistent engine, reporting one "s" line per "a" line.
// --check-incremental validates every SAT model against the formula
// active at that moment and certifies every UNSAT answer by re-checking
// the accumulated DRAT trace (selectors already elided by the solver)
// with the lenient incremental checker — adding the failed-assumption
// core as units for assumption-dependent answers. Exit code follows the
// last answer (10/20/0); 1 on any error or failed check.
int run_scripted(const ArgParser& args, const std::string& path,
                 telemetry::Telemetry* hub,
                 const telemetry::SolverTelemetry* sink,
                 util::MemoryBudget* mem_budget) {
  icnf::ParseResult parsed = icnf::read_checked_file(path);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.first_error() << "\n";
    return 1;
  }
  const icnf::Script script = std::move(parsed.script);

  bool preset_ok = false;
  const SolverOptions options = options_from_args(args, &preset_ok);
  if (!preset_ok) return 1;

  Budget budget;
  budget.max_seconds = args.get_double("timeout");
  budget.max_conflicts = static_cast<std::uint64_t>(args.get_int("conflicts"));

  const int threads = static_cast<int>(args.get_int("threads"));
  const std::string drat_path = args.get_string("drat");
  const bool check = args.has_flag("check-incremental");
  const bool want_proof = check || !drat_path.empty();
  if (want_proof && threads > 1) {
    std::cerr << "error: incremental proofs need --threads 1 (a proof-"
                 "logging portfolio does not support push/pop clause "
                 "groups yet)\n";
    return 1;
  }

  Solver solver(options);
  solver.set_telemetry(sink);
  solver.set_memory_budget(mem_budget);
  std::unique_ptr<portfolio::PortfolioSolver> race;
  if (threads > 1) {
    portfolio::PortfolioOptions popts;
    popts.num_threads = threads;
    popts.share_clauses = !args.has_flag("no-share");
    popts.base_seed = options.seed;
    popts.telemetry = hub;
    popts.memory_budget = mem_budget;
    race = std::make_unique<portfolio::PortfolioSolver>(popts);
  }
  proof::MemoryProofWriter trace_writer;
  if (want_proof) solver.set_proof(&trace_writer);

  // Mirror of the active formula (base + open groups), for checking.
  std::vector<std::vector<Lit>> active;
  std::vector<std::size_t> marks;

  std::size_t solves = 0;
  SolveStatus last = SolveStatus::unknown;
  bool failed_check = false;
  std::size_t models_checked = 0;
  std::size_t proofs_checked = 0;
  for (const icnf::Op& op : script.ops) {
    switch (op.kind) {
      case icnf::Op::Kind::add_clause:
        active.push_back(op.lits);
        if (race != nullptr) {
          race->add_clause(op.lits);
        } else {
          (void)solver.add_clause(op.lits);
        }
        break;
      case icnf::Op::Kind::push:
        marks.push_back(active.size());
        if (race != nullptr) {
          race->push_group();
        } else {
          solver.push_group();
        }
        break;
      case icnf::Op::Kind::pop:
        active.resize(marks.back());
        marks.pop_back();
        if (race != nullptr) {
          race->pop_group();
        } else {
          solver.pop_group();
        }
        break;
      case icnf::Op::Kind::solve: {
        ++solves;
        last = race != nullptr
                   ? race->solve_with_assumptions(op.lits, budget)
                   : solver.solve_with_assumptions(op.lits, budget);
        std::cout << "c query " << solves << "\ns " << to_string(last) << "\n";
        if (last == SolveStatus::satisfiable && check) {
          Cnf formula;
          for (const auto& clause : active) formula.add_clause(clause);
          const std::vector<Value>& model =
              race != nullptr ? race->model() : solver.model();
          bool valid = formula.is_satisfied_by(model);
          for (const Lit a : op.lits) {
            if (a.var() >= static_cast<Var>(model.size()) ||
                value_of_literal(model[a.var()], a) != Value::true_value) {
              valid = false;
            }
          }
          ++models_checked;
          if (!valid) {
            std::cerr << "error: query " << solves
                      << ": model failed validation\n";
            failed_check = true;
          }
        }
        if (last == SolveStatus::unsatisfiable && check && race == nullptr) {
          Cnf formula;
          for (const auto& clause : active) formula.add_clause(clause);
          proof::Proof composed = trace_writer.proof();
          if (!composed.ends_with_empty()) {
            for (const Lit a : solver.failed_assumptions()) {
              formula.add_unit(a);
            }
            composed.add({});
          }
          proof::DratChecker checker(formula);
          checker.set_telemetry(sink);
          proof::CheckOptions copts;
          copts.allow_unverified_adds = true;
          const proof::CheckResult result = checker.check(composed, copts);
          ++proofs_checked;
          if (!result.valid) {
            std::cerr << "error: query " << solves
                      << ": incremental proof failed verification ("
                      << result.error << ")\n";
            failed_check = true;
          }
        }
        break;
      }
    }
  }

  if (!drat_path.empty()) {
    const proof::DratFormat format = args.has_flag("binary-drat")
                                         ? proof::DratFormat::binary
                                         : proof::DratFormat::text;
    std::string error;
    if (!proof::write_drat_file(drat_path, trace_writer.proof(), format,
                                &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
  }
  if (args.has_flag("stats")) {
    const SolverStats& stats =
        race != nullptr ? race->reports().empty()
                              ? SolverStats{}
                              : race->reports().front().stats
                        : solver.stats();
    std::cout << "c scripted: " << solves << " queries, groups pushed "
              << stats.groups_pushed << " popped " << stats.groups_popped
              << ", lemmas retained " << stats.pop_retained_learned
              << " dropped " << stats.pop_dropped_learned << "\n";
  }
  if (check) {
    std::cout << "c check-incremental: " << models_checked
              << " models validated, " << proofs_checked
              << " UNSAT answers certified\n";
  }
  if (failed_check) return 1;
  if (last == SolveStatus::satisfiable) return 10;
  if (last == SolveStatus::unsatisfiable) return 20;
  return 0;
}

void print_skin_histogram(const SolverStats& stats) {
  std::cout << "c skin effect f(r) — decisions by top-clause distance:\n";
  const std::size_t rows[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 50, 100, 500, 1000, 2000};
  for (const std::size_t r : rows) {
    std::cout << "c   f(" << r << ") = " << stats.skin_at(r) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("preset", "berkmin",
                  "heuristic preset: berkmin, chaff, limmat, less_sensitivity, "
                  "less_mobility, limited_keeping, sat_top, unsat_top, take_0, "
                  "take_1, take_rand");
  args.add_option("generate", "", "generate an instance instead of reading a file "
                  "(see --list-generators)");
  args.add_option("threads", "1",
                  "portfolio size: run N diversified solvers in parallel with "
                  "learned-clause sharing (1 = the classic sequential solver)");
  args.add_flag("no-share", "portfolio only: disable clause sharing");
  args.add_option("timeout", "0", "wall-clock budget in seconds (0 = none)");
  args.add_option("conflicts", "0", "conflict budget (0 = none)");
  args.add_option("restart", "550", "restart interval in conflicts");
  args.add_option("seed", "0", "random tie-breaking seed");
  args.add_option("young-max-len", "42", "keep young clauses up to this length");
  args.add_option("young-min-act", "8", "or with at least this activity");
  args.add_option("old-max-len", "8", "keep old clauses up to this length");
  args.add_option("old-act-threshold", "60", "or above this activity threshold");
  args.add_option("decay-interval", "256", "conflicts between activity decays");
  args.add_option("decay-factor", "2", "activity decay divisor");
  args.add_option("drat", "", "write a DRAT proof to this file (with "
                  "--threads N the spliced multi-worker trace, written after "
                  "an UNSAT answer)");
  args.add_flag("binary-drat", "emit proofs in drat-trim's binary format");
  args.add_option("unsat-core", "", "on UNSAT: verify the proof with the "
                  "in-tree checker and write an unsatisfiable core of the "
                  "input to this file as DIMACS");
  args.add_flag("check-model", "verify the model against the parsed formula "
                "before printing s SATISFIABLE (exit 1 on failure)");
  args.add_option("write-dimacs", "",
                  "export the (possibly generated) formula to this file and "
                  "continue solving");
  args.add_flag("icnf", "treat the input as an incremental .icnf script "
                "(push/pop clause groups; auto-detected by extension)");
  args.add_flag("check-incremental", "scripted mode: validate every SAT "
                "model against the active formula and certify every UNSAT "
                "answer by re-checking the accumulated DRAT trace (exit 1 "
                "on any failure)");
  args.add_option("icnf-out", "", "synthesize a push/pop edit script from "
                  "the loaded formula, write it to this file, and exit");
  args.add_option("icnf-seed", "0", "seed for --icnf-out synthesis");
  args.add_flag("preprocess", "run subsumption preprocessing first (composes "
                "with --drat/--unsat-core: the rewrites lead the proof "
                "trace, checked against the original formula)");
  args.add_flag("inprocess", "inprocess at restart boundaries: failed-literal "
                "probing, subsumption/self-subsumption, vivification, and "
                "(single-shot runs) bounded variable elimination — on by "
                "default, every rewrite proof-logged");
  args.add_flag("no-inprocess", "disable restart-time inprocessing");
  args.add_option("reduce-policy", "", "override the preset's clause-database "
                  "reduction policy: berkmin, glue (LBD core/tier2/local "
                  "tiers), limited, none");
  args.add_option("metrics-out", "", "write a telemetry metrics snapshot on "
                  "exit (counters, latency histograms, phase profile); a "
                  ".prom extension selects Prometheus text exposition, "
                  "anything else JSON");
  args.add_option("trace-out", "", "write the solver event trace on exit "
                  "(restarts, reductions, GC, conflict-rate samples)");
  args.add_option("trace-format", "chrome", "trace file format: chrome "
                  "(chrome://tracing / Perfetto) or jsonl");
  robustness::add_flags(&args);
  args.add_flag("stats", "print search statistics");
  args.add_flag("skin", "print the skin-effect histogram (Table 3 data)");
  args.add_flag("model", "print the satisfying assignment");
  args.add_flag("minimize", "enable learned-clause minimization (extension)");
  args.add_flag("list-generators", "list generator specs and exit");
  args.add_flag("help", "show this help");

  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  if (args.has_flag("help")) {
    std::cout << args.help("dimacs_solver — the BerkMin reproduction CLI");
    return 0;
  }
  if (args.has_flag("list-generators")) {
    std::cout << gen::registry_help();
    return 0;
  }

  // Telemetry: one hub for the whole run; written by the guard on exit.
  // The main-thread sink feeds the sequential solver, scripted engines and
  // the proof checker; portfolio workers get their own rings via the hub.
  const std::string trace_format_name = args.get_string("trace-format");
  if (trace_format_name != "chrome" && trace_format_name != "jsonl") {
    std::cerr << "error: unknown --trace-format '" << trace_format_name
              << "' (chrome or jsonl)\n";
    return 1;
  }
  // Declared before the writer guard: destructors run in reverse order,
  // and the guard's flush needs the hub alive.
  std::unique_ptr<telemetry::Telemetry> hub;
  TelemetryWriter telemetry_out;
  telemetry_out.metrics_path = args.get_string("metrics-out");
  telemetry_out.trace_path = args.get_string("trace-out");
  telemetry_out.format = trace_format_name == "jsonl"
                             ? telemetry::TraceFormat::jsonl
                             : telemetry::TraceFormat::chrome;
  telemetry::SolverTelemetry main_sink;
  const telemetry::SolverTelemetry* sink = nullptr;
  if (!telemetry_out.metrics_path.empty() || !telemetry_out.trace_path.empty()) {
    hub = std::make_unique<telemetry::Telemetry>();
    telemetry_out.hub = hub.get();
    main_sink = telemetry::SolverTelemetry(*hub, hub->trace().ring("main"));
    sink = &main_sink;
  }

  // Resource governor + fault injection (--memory-budget / --fault-*).
  // Both live for the whole run; their gauges/counters surface in
  // --metrics-out when a hub exists.
  std::unique_ptr<util::MemoryBudget> mem_budget;
  std::unique_ptr<util::FaultInjector> injector;
  if (!robustness::budget_from_args(args, &mem_budget) ||
      !robustness::injector_from_args(args, &injector)) {
    return 1;
  }
  robustness::InstalledInjector installed;
  installed.install(injector.get());
  if (hub != nullptr) {
    if (mem_budget != nullptr) {
      mem_budget->attach_telemetry(hub->metrics().gauge("memory_budget_bytes"),
                                   hub->metrics().counter("degrade_events"));
    }
    if (injector != nullptr) {
      injector->set_counter(hub->metrics().counter("faults_injected"));
    }
  }

  // Scripted incremental mode: the input is an op stream, not a formula.
  const bool scripted =
      args.has_flag("icnf") ||
      (!args.positional().empty() &&
       args.positional()[0].size() > 5 &&
       args.positional()[0].rfind(".icnf") == args.positional()[0].size() - 5);
  if (scripted) {
    if (args.positional().empty()) {
      std::cerr << "error: --icnf needs a script file\n";
      return 1;
    }
    return run_scripted(args, args.positional()[0], hub.get(), sink,
                        mem_budget.get());
  }

  // Load or generate the formula.
  Cnf cnf;
  try {
    if (const std::string spec = args.get_string("generate"); !spec.empty()) {
      std::string error;
      auto instance = gen::generate_from_spec(spec, &error);
      if (!instance) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      cnf = std::move(instance->cnf);
      std::cout << "c generated " << spec << "\n";
    } else if (!args.positional().empty()) {
      // The checked reader surfaces recoverable issues (today: a header
      // clause count disagreeing with the file) as warnings instead of
      // refusing a formula that is perfectly solvable.
      dimacs::ParseResult parsed =
          dimacs::read_checked_file(args.positional()[0]);
      for (const dimacs::ParseIssue& issue : parsed.issues) {
        if (!issue.fatal) std::cerr << issue.to_string() << "\n";
      }
      if (!parsed.ok()) {
        std::cerr << "error: " << parsed.first_error() << "\n";
        return 1;
      }
      cnf = std::move(parsed.cnf);
    } else {
      std::cerr << "error: no input (give a DIMACS file or --generate)\n";
      return 1;
    }
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
  std::cout << "c " << cnf.num_vars() << " variables, " << cnf.num_clauses()
            << " clauses\n";

  if (const std::string path = args.get_string("write-dimacs"); !path.empty()) {
    dimacs::write_file(path, cnf, "exported by dimacs_solver");
    std::cout << "c wrote " << path << "\n";
  }
  if (const std::string path = args.get_string("icnf-out"); !path.empty()) {
    const auto seed = static_cast<std::uint64_t>(args.get_int("icnf-seed"));
    try {
      icnf::write_file(path, icnf::synthesize_from_cnf(cnf, seed),
                       "synthesized push/pop edit script (seed " +
                           std::to_string(seed) + ")");
    } catch (const std::exception& ex) {
      std::cerr << "error: " << ex.what() << "\n";
      return 1;
    }
    std::cout << "c wrote incremental script to " << path << "\n";
    return 0;
  }
  const std::string drat_path = args.get_string("drat");
  const std::string core_path = args.get_string("unsat-core");
  const bool want_proof = !drat_path.empty() || !core_path.empty();
  const proof::DratFormat drat_format = args.has_flag("binary-drat")
                                            ? proof::DratFormat::binary
                                            : proof::DratFormat::text;

  bool preset_ok = false;
  SolverOptions options = options_from_args(args, &preset_ok);
  if (!preset_ok) return 1;

  Budget budget;
  budget.max_seconds = args.get_double("timeout");
  budget.max_conflicts = static_cast<std::uint64_t>(args.get_int("conflicts"));

  const int threads = static_cast<int>(args.get_int("threads"));

  // Proof sinks are created before preprocessing so that the
  // preprocessor's rewrites become the leading steps of the very trace
  // the solver continues — one proof, checkable against the original
  // (unpreprocessed) formula. Core extraction needs the whole trace in
  // memory; plain --drat streams straight to disk as the search runs.
  proof::MemoryProofWriter memory_proof;
  std::ofstream drat_stream;
  std::unique_ptr<proof::ProofWriter> stream_writer;
  proof::ProofWriter* seq_writer = nullptr;  // single-thread proof sink
  if (threads <= 1 && want_proof) {
    if (!core_path.empty()) {
      seq_writer = &memory_proof;
    } else {
      drat_stream.open(drat_path, std::ios::binary);
      if (!drat_stream) {
        std::cerr << "error: cannot open '" << drat_path << "' for the proof\n";
        return 1;
      }
      if (drat_format == proof::DratFormat::binary) {
        stream_writer = std::make_unique<proof::BinaryDratWriter>(drat_stream);
      } else {
        stream_writer = std::make_unique<proof::TextDratWriter>(drat_stream);
      }
      seq_writer = stream_writer.get();
    }
  }
  // Portfolio runs log preprocessing into a memory buffer whose steps are
  // prepended to the spliced trace after the race.
  proof::MemoryProofWriter pre_writer;
  // The certification target: proofs are checked against the formula as
  // given, not the preprocessed rewrite the solver saw.
  Cnf original;
  const bool certify_original = args.has_flag("preprocess") && want_proof;
  if (args.has_flag("preprocess")) {
    if (want_proof) original = cnf;
    proof::ProofWriter* pre_proof =
        want_proof ? (threads > 1 ? static_cast<proof::ProofWriter*>(&pre_writer)
                                  : seq_writer)
                   : nullptr;
    const PreprocessResult pre = preprocess(cnf, {}, pre_proof);
    if (pre.unsat) {
      std::cout << "s UNSATISFIABLE\nc (by preprocessing)\n";
      // The trace already ends with the empty clause. Streamed proofs are
      // complete on disk; buffered ones still need certification/writing.
      if (want_proof && (threads > 1 || !core_path.empty())) {
        const proof::Proof trace =
            threads > 1 ? pre_writer.proof() : memory_proof.proof();
        if (!certify_unsat(original, trace, threads > 1 ? drat_path : "",
                           drat_format, core_path, sink)) {
          return 1;
        }
      }
      return 20;
    }
    std::cout << "c preprocessing: " << pre.removed_subsumed << " subsumed, "
              << pre.strengthened_literals << " literals strengthened, "
              << pre.propagated_units << " units\n";
    cnf = pre.cnf;
  }
  const Cnf& proof_formula = certify_original ? original : cnf;
  if (threads > 1) {
    portfolio::PortfolioOptions popts;
    popts.num_threads = threads;
    popts.share_clauses = !args.has_flag("no-share");
    popts.base_seed = options.seed;
    popts.log_proof = want_proof;
    // An explicit preset or any tuning flag keeps the tuned configuration
    // on every worker (only the restart/decay schedule and seeds are
    // jittered); otherwise the default diversified lineup runs. --seed
    // alone stays on the default lineup — it already reseeds it.
    const bool tuned =
        args.get_string("preset") != "berkmin" || args.provided("restart") ||
        args.has_flag("minimize") || args.provided("young-max-len") ||
        args.provided("young-min-act") || args.provided("old-max-len") ||
        args.provided("old-act-threshold") || args.provided("decay-interval") ||
        args.provided("decay-factor");
    if (tuned) {
      popts.configs = portfolio::diversify_around(options, threads, options.seed);
    } else {
      popts.configs = portfolio::diversified_configs(threads, options.seed);
    }
    // Workers inprocess at restarts like the sequential engine, but never
    // eliminate variables: an eliminated variable may still occur in a
    // sibling's exchanged clauses.
    for (portfolio::WorkerConfig& config : popts.configs) {
      config.options.inprocess = options.inprocess;
      config.options.inprocess.var_elim = false;
    }
    popts.telemetry = hub.get();
    popts.memory_budget = mem_budget.get();
    portfolio::PortfolioSolver portfolio(popts);
    portfolio.load(cnf);

    WallTimer timer;
    const SolveStatus status = portfolio.solve(budget);
    const double elapsed = timer.seconds();

    if (status == SolveStatus::satisfiable && args.has_flag("check-model") &&
        !model_checks_out(cnf, portfolio.model())) {
      return 1;
    }
    std::cout << "s " << to_string(status) << "\n";
    if (status == SolveStatus::satisfiable) {
      if (args.has_flag("model")) {
        std::cout << "v ";
        for (Var v = 0; v < cnf.num_vars(); ++v) {
          std::cout << (portfolio.model_value(Lit::positive(v)) ? v + 1 : -(v + 1))
                    << ' ';
        }
        std::cout << "0\n";
      }
      if (!cnf.is_satisfied_by(portfolio.model())) {
        std::cerr << "error: model failed validation (solver bug)\n";
        return 1;
      }
    }
    if (status == SolveStatus::unsatisfiable && want_proof) {
      // One trace: preprocessing rewrites first, then the spliced race.
      proof::Proof trace = pre_writer.proof();
      proof::Proof spliced = portfolio.spliced_proof();
      trace.steps.insert(trace.steps.end(),
                         std::make_move_iterator(spliced.steps.begin()),
                         std::make_move_iterator(spliced.steps.end()));
      if (!certify_unsat(proof_formula, trace, drat_path, drat_format,
                         core_path, sink)) {
        return 1;
      }
    }
    if (args.has_flag("stats")) {
      std::cout << "c time " << elapsed << " s, " << threads << " workers\n"
                << "c winner " << portfolio.winner_name() << " (worker "
                << portfolio.winner() << ")\n";
      for (const portfolio::WorkerReport& report : portfolio.reports()) {
        std::cout << "c worker " << report.name << ": "
                  << to_string(report.status) << " in " << report.seconds
                  << " s, " << report.stats.summary() << "\n";
      }
      const portfolio::ExchangeStats& ex = portfolio.exchange_stats();
      std::cout << "c exchange: " << ex.accepted << " stored ("
                << ex.rejected_duplicate << " dup, " << ex.rejected_length
                << " long, " << ex.rejected_glue << " glue, "
                << ex.rejected_full << " over budget), " << ex.collected
                << " collected; totals exported "
                << portfolio.clauses_exported() << ", imported "
                << portfolio.clauses_imported() << "\n";
    }
    if (status == SolveStatus::satisfiable) return 10;
    if (status == SolveStatus::unsatisfiable) return 20;
    return 0;
  }

  // Single-shot sequential solving: nothing can mention a variable again
  // after this solve, so inprocessing may also eliminate variables.
  options.inprocess.var_elim = options.inprocess.enabled;
  Solver solver(options);
  solver.set_telemetry(sink);
  solver.set_memory_budget(mem_budget.get());
  if (seq_writer != nullptr) solver.set_proof(seq_writer);

  solver.load(cnf);

  WallTimer timer;
  const SolveStatus status = solver.solve(budget);
  const double elapsed = timer.seconds();

  if (status == SolveStatus::satisfiable && args.has_flag("check-model") &&
      !model_checks_out(cnf, solver.model())) {
    return 1;
  }
  std::cout << "s " << to_string(status) << "\n";
  if (status == SolveStatus::unsatisfiable && !core_path.empty() &&
      !certify_unsat(proof_formula, memory_proof.proof(), drat_path,
                     drat_format, core_path, sink)) {
    return 1;
  }
  // A streamed DRAT writer that hit a short write latched the failure;
  // refuse to present the truncated file as a proof.
  if (status == SolveStatus::unsatisfiable && stream_writer != nullptr &&
      !stream_writer->ok()) {
    std::cerr << "error: DRAT proof incomplete (" << stream_writer->fail_reason()
              << ")\n";
    return 1;
  }
  if (status == SolveStatus::satisfiable && args.has_flag("model")) {
    std::cout << "v ";
    for (Var v = 0; v < cnf.num_vars(); ++v) {
      std::cout << (solver.model_value(Lit::positive(v)) ? v + 1 : -(v + 1)) << ' ';
    }
    std::cout << "0\n";
  }
  if (status == SolveStatus::satisfiable &&
      !cnf.is_satisfied_by(solver.model())) {
    std::cerr << "error: model failed validation (solver bug)\n";
    return 1;
  }

  if (args.has_flag("stats")) {
    const SolverStats& stats = solver.stats();
    std::cout << "c time " << elapsed << " s\n"
              << "c decisions " << stats.decisions << " (top-clause "
              << stats.top_clause_decisions << ", global "
              << stats.global_decisions << ")\n"
              << "c conflicts " << stats.conflicts << "\n"
              << "c propagations " << stats.propagations << "\n"
              << "c restarts " << stats.restarts << "\n"
              << "c learned " << stats.learned_clauses << " (units "
              << stats.learned_units << "), deleted " << stats.deleted_clauses
              << "\n"
              << "c database ratio " << stats.db_generated_ratio()
              << ", peak live ratio " << stats.db_peak_ratio() << "\n";
  }
  if (args.has_flag("skin")) print_skin_histogram(solver.stats());

  if (status == SolveStatus::satisfiable) return 10;
  if (status == SolveStatus::unsatisfiable) return 20;
  return 0;
}
