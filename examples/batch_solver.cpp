// Batch SAT solving over the time-sliced SolverService: read a manifest
// of instances, multiplex them over one worker pool, and stream one JSON
// result object per job (JSONL) as jobs finish.
//
//   ./build/examples/batch_solver manifest.txt --pool 4 --slice-conflicts 2000
//   ./build/examples/batch_solver manifest.txt --deadline-ms 500 --check
//   ./build/examples/batch_solver manifest.txt --check-proofs \
//       --drat proofs/ --unsat-core cores/
//
// Manifest format: one instance per line, '#' starts a comment.
//   <spec> [key=value ...]
// where <spec> is a generator spec ("hole:8", "rand3:60:258:1", see
// --list-generators of dimacs_solver) or a DIMACS path (use "file:<path>"
// to force file interpretation). Per-job keys override the global flags:
//   name=<str> deadline-ms=<int> conflicts=<int> threads=<int>
//   priority=<int> assume=<d1,d2,...>   (DIMACS literals)
//
// Exit codes: 0 = every job reached a terminal state (and --check, if
// given, found no disagreement), 1 = manifest/usage error or a mismatch.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include <thread>

#include "cnf/dimacs.h"
#include "cnf/icnf.h"
#include "core/solver.h"
#include "gen/registry.h"
#include "proof/drat_checker.h"
#include "proof/drat_file.h"
#include "robustness_flags.h"
#include "service/solver_service.h"
#include "telemetry/telemetry.h"
#include "util/cli.h"
#include "util/memory_budget.h"

using namespace berkmin;

namespace {

struct ManifestEntry {
  std::string name;
  Cnf cnf;
  std::vector<Lit> assumptions;
  service::JobLimits limits;
  // "icnf:<path>" entries: an incremental push/pop script driven through a
  // persistent service session instead of a one-shot job.
  bool is_script = false;
  icnf::Script script;
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_json(const service::JobResult& result, int model_valid) {
  std::ostringstream out;
  out << "{\"id\":" << result.id << ",\"name\":\"" << json_escape(result.name)
      << "\",\"status\":\"" << to_string(result.status) << "\",\"outcome\":\""
      << to_string(result.outcome) << "\",\"slices\":" << result.slices
      << ",\"preemptions\":" << result.preemptions
      << ",\"conflicts\":" << result.conflicts
      << ",\"decisions\":" << result.decisions
      << ",\"propagations\":" << result.propagations
      << ",\"learned\":" << result.learned_clauses
      << ",\"dup_binaries_skipped\":" << result.duplicate_binaries_skipped
      << ",\"queue_s\":" << result.queue_seconds
      << ",\"solve_s\":" << result.solve_seconds
      << ",\"wall_s\":" << result.wall_seconds;
  if (model_valid >= 0) {
    out << ",\"model_valid\":" << (model_valid ? "true" : "false");
  }
  if (result.proof_checked) {
    out << ",\"proof_valid\":" << (result.proof_valid ? "true" : "false")
        << ",\"proof_steps\":" << result.proof.size();
  }
  if (!result.unsat_core.empty()) {
    out << ",\"core_clauses\":" << result.unsat_core.size();
  }
  if (result.status == SolveStatus::unsatisfiable &&
      !result.failed_assumptions.empty()) {
    // The failed-assumption core: these assumptions alone already clash.
    out << ",\"failed_assumptions\":[";
    for (std::size_t i = 0; i < result.failed_assumptions.size(); ++i) {
      out << (i == 0 ? "" : ",") << to_dimacs(result.failed_assumptions[i]);
    }
    out << "]";
  }
  if (!result.error.empty()) {
    out << ",\"error\":\"" << json_escape(result.error) << "\"";
  }
  out << "}";
  return out.str();
}

// Parses one manifest line into an entry. Returns false with *error set
// on malformed lines.
bool parse_entry(const std::string& line, const service::JobLimits& defaults,
                 ManifestEntry* entry, std::string* error) {
  std::istringstream tokens(line);
  std::string spec;
  tokens >> spec;
  entry->limits = defaults;

  std::string token;
  while (tokens >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "malformed manifest token '" + token + "' (want key=value)";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    try {
      if (key == "name") {
        entry->name = value;
      } else if (key == "deadline-ms") {
        entry->limits.deadline_seconds = std::stod(value) / 1000.0;
      } else if (key == "conflicts") {
        entry->limits.max_conflicts = std::stoull(value);
      } else if (key == "threads") {
        entry->limits.threads = std::stoi(value);
      } else if (key == "priority") {
        entry->limits.priority = std::stoi(value);
      } else if (key == "assume") {
        std::istringstream dimacs(value);
        std::string item;
        while (std::getline(dimacs, item, ',')) {
          entry->assumptions.push_back(from_dimacs(std::stoi(item)));
        }
      } else {
        *error = "unknown manifest key '" + key + "'";
        return false;
      }
    } catch (const std::exception&) {
      *error = "bad value for manifest key '" + key + "': " + value;
      return false;
    }
  }

  if (spec.rfind("icnf:", 0) == 0) {
    const std::string path = spec.substr(5);
    try {
      entry->script = icnf::read_file(path);
    } catch (const std::exception& ex) {
      *error = ex.what();
      return false;
    }
    entry->is_script = true;
    if (entry->name.empty()) entry->name = path;
    return true;
  }

  if (spec.rfind("file:", 0) == 0) {
    const std::string path = spec.substr(5);
    try {
      entry->cnf = dimacs::read_file(path);
    } catch (const std::exception& ex) {
      *error = ex.what();
      return false;
    }
    if (entry->name.empty()) entry->name = path;
    return true;
  }

  std::string gen_error;
  if (auto instance = gen::generate_from_spec(spec, &gen_error)) {
    entry->cnf = std::move(instance->cnf);
    if (entry->name.empty()) entry->name = instance->name;
    return true;
  }
  // Not a known generator spec: fall back to a DIMACS path.
  try {
    entry->cnf = dimacs::read_file(spec);
  } catch (const std::exception& ex) {
    *error = "'" + spec + "' is neither a generator spec (" + gen_error +
             ") nor a readable DIMACS file (" + ex.what() + ")";
    return false;
  }
  if (entry->name.empty()) entry->name = spec;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("pool", "4", "service worker threads");
  args.add_option("slice-conflicts", "2000",
                  "conflicts per time slice (0 = run each job to completion)");
  args.add_option("deadline-ms", "0",
                  "default per-job wall-clock deadline in ms (0 = none)");
  args.add_option("conflicts", "0",
                  "default per-job total conflict budget (0 = none)");
  args.add_option("threads", "1",
                  "default per-job portfolio escalation (>1 races that many "
                  "diversified workers inside each slice)");
  args.add_option("max-pending", "1024", "bounded admission queue size");
  args.add_option("watchdog-ms", "0", "per-slice wall-clock watchdog: a "
                  "slice running longer than this is preempted and "
                  "rescheduled (0 = off)");
  args.add_option("slice-retries", "2", "times a job whose slice died (a "
                  "crashed engine or injected fault) is retried on a fresh "
                  "engine before reporting an error");
  robustness::add_flags(&args);
  args.add_option("drat", "", "directory for per-job DRAT traces "
                  "(<dir>/job-<id>.drat, written for UNSAT jobs)");
  args.add_flag("binary-drat", "write traces in drat-trim's binary format");
  args.add_option("unsat-core", "", "directory for per-job UNSAT cores "
                  "(<dir>/job-<id>.core.cnf; implies --check-proofs)");
  args.add_flag("check-proofs", "verify every UNSAT trace with the in-tree "
                "checker inside the service; JSONL gains proof_valid and the "
                "run fails on any invalid proof");
  args.add_flag("check", "re-solve each instance with a plain single-threaded "
                "Solver and fail on any verdict mismatch");
  args.add_flag("stats", "append a summary JSON line with service stats");
  args.add_option("metrics-out", "", "write the service metrics snapshot on "
                  "exit: latency histograms (slice, job wait, session solve), "
                  "hub counters and per-job totals; a .prom extension selects "
                  "Prometheus text exposition, anything else JSON with a "
                  "per_job array");
  args.add_option("trace-out", "", "write the event trace on exit: per-worker "
                  "rings (slices, restarts, reductions) plus the scheduler's "
                  "job/session lifecycle ring");
  args.add_option("trace-format", "chrome", "trace file format: chrome "
                  "(chrome://tracing / Perfetto) or jsonl");
  args.add_flag("help", "show this help");

  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  if (args.has_flag("help")) {
    std::cout << args.help("batch_solver — time-sliced batch solving over one "
                           "thread pool");
    return 0;
  }
  if (args.positional().empty()) {
    std::cerr << "error: no manifest file given\n";
    return 1;
  }

  std::ifstream manifest(args.positional()[0]);
  if (!manifest) {
    std::cerr << "error: cannot open manifest '" << args.positional()[0]
              << "'\n";
    return 1;
  }

  service::JobLimits defaults;
  defaults.deadline_seconds = args.get_double("deadline-ms") / 1000.0;
  defaults.max_conflicts =
      static_cast<std::uint64_t>(args.get_int("conflicts"));
  defaults.threads = static_cast<int>(args.get_int("threads"));

  std::vector<ManifestEntry> entries;
  std::string line;
  int line_number = 0;
  while (std::getline(manifest, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    ManifestEntry entry;
    std::string error;
    if (!parse_entry(line.substr(first), defaults, &entry, &error)) {
      std::cerr << "error: manifest line " << line_number << ": " << error
                << "\n";
      return 1;
    }
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    std::cerr << "error: manifest holds no instances\n";
    return 1;
  }

  const std::string drat_dir = args.get_string("drat");
  const std::string core_dir = args.get_string("unsat-core");
  service::JobProofOptions proof_options;
  proof_options.log = !drat_dir.empty();
  proof_options.check = args.has_flag("check-proofs") || !core_dir.empty();
  proof_options.core = !core_dir.empty();
  const proof::DratFormat drat_format = args.has_flag("binary-drat")
                                            ? proof::DratFormat::binary
                                            : proof::DratFormat::text;
  try {
    if (!drat_dir.empty()) std::filesystem::create_directories(drat_dir);
    if (!core_dir.empty()) std::filesystem::create_directories(core_dir);
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }

  const std::string metrics_path = args.get_string("metrics-out");
  const std::string trace_path = args.get_string("trace-out");
  const std::string trace_format_name = args.get_string("trace-format");
  if (trace_format_name != "chrome" && trace_format_name != "jsonl") {
    std::cerr << "error: unknown --trace-format '" << trace_format_name
              << "' (chrome or jsonl)\n";
    return 1;
  }
  std::unique_ptr<telemetry::Telemetry> hub;
  if (!metrics_path.empty() || !trace_path.empty()) {
    hub = std::make_unique<telemetry::Telemetry>();
  }

  // Resource governor + fault injection (--memory-budget / --fault-*),
  // shared by every engine the service creates. Outlives the service.
  std::unique_ptr<util::MemoryBudget> budget;
  std::unique_ptr<util::FaultInjector> injector;
  if (!robustness::budget_from_args(args, &budget) ||
      !robustness::injector_from_args(args, &injector)) {
    return 1;
  }
  robustness::InstalledInjector installed;
  installed.install(injector.get());
  if (hub != nullptr) {
    if (budget != nullptr) {
      budget->attach_telemetry(hub->metrics().gauge("memory_budget_bytes"),
                               hub->metrics().counter("degrade_events"));
    }
    if (injector != nullptr) {
      injector->set_counter(hub->metrics().counter("faults_injected"));
    }
  }

  service::ServiceOptions sopts;
  sopts.num_workers = static_cast<int>(args.get_int("pool"));
  sopts.slice_conflicts =
      static_cast<std::uint64_t>(args.get_int("slice-conflicts"));
  sopts.max_pending = static_cast<std::size_t>(args.get_int("max-pending"));
  sopts.telemetry = hub.get();
  sopts.watchdog_seconds = args.get_double("watchdog-ms") / 1000.0;
  sopts.max_slice_retries = static_cast<int>(args.get_int("slice-retries"));
  sopts.memory_budget = budget.get();
  service::SolverService solving(sopts);

  // One-shot jobs are submitted first (in manifest order), so their ids
  // are 1..R and id-1 indexes this list; incremental scripts run later on
  // their own driver threads and report through those instead.
  std::vector<const ManifestEntry*> regular;
  std::vector<const ManifestEntry*> scripts;
  for (const ManifestEntry& entry : entries) {
    (entry.is_script ? scripts : regular).push_back(&entry);
  }

  // Stream results as they finish.
  std::mutex output_mutex;
  bool model_failure = false;
  bool proof_failure = false;
  solving.set_completion_callback([&](const service::JobResult& result) {
    if (result.session != service::invalid_session) return;  // driver reports
    int model_valid = -1;
    if (result.status == SolveStatus::satisfiable) {
      const ManifestEntry& entry = *regular[result.id - 1];
      model_valid = entry.cnf.is_satisfied_by(result.model) ? 1 : 0;
      for (const Lit assumption : entry.assumptions) {
        if (value_of_literal(result.model[assumption.var()], assumption) !=
            Value::true_value) {
          model_valid = 0;
        }
      }
    }
    // Per-job proof artifacts land in their own files (ids are unique, so
    // no lock is needed for the writes themselves).
    bool job_proof_failed = result.proof_checked && !result.proof_valid;
    if (result.status == SolveStatus::unsatisfiable) {
      const std::string stem = "job-" + std::to_string(result.id);
      std::string error;
      if (!drat_dir.empty() && result.proof.ends_with_empty() &&
          !proof::write_drat_file(drat_dir + "/" + stem + ".drat",
                                  result.proof, drat_format, &error)) {
        std::cerr << "error: " << error << "\n";
        job_proof_failed = true;
      }
      if (!core_dir.empty() && !result.unsat_core.empty()) {
        const ManifestEntry& entry = *regular[result.id - 1];
        try {
          dimacs::write_file(
              core_dir + "/" + stem + ".core.cnf",
              proof::DratChecker::core_formula(entry.cnf, result.unsat_core),
              "unsat core extracted by batch_solver for " + entry.name);
        } catch (const std::exception& ex) {
          std::cerr << "error: " << ex.what() << "\n";
          job_proof_failed = true;
        }
      }
    }
    std::lock_guard<std::mutex> lock(output_mutex);
    if (model_valid == 0) model_failure = true;
    if (job_proof_failed) proof_failure = true;
    std::cout << result_json(result, model_valid) << "\n" << std::flush;
  });

  // A refused submission (shutdown or a full queue that stopped accepting)
  // must not vanish from the JSONL stream: every manifest entry gets
  // exactly one record, refused ones with outcome "refused", and any
  // refusal forces a nonzero exit below.
  bool submit_refused = false;
  for (const ManifestEntry* entry : regular) {
    service::JobRequest request;
    request.name = entry->name;
    request.cnf = entry->cnf;  // keep a copy for --check / model validation
    request.assumptions = entry->assumptions;
    request.limits = entry->limits;
    request.proof = proof_options;
    if (!solving.submit(std::move(request))) {
      std::lock_guard<std::mutex> lock(output_mutex);
      submit_refused = true;
      std::cout << "{\"name\":\"" << json_escape(entry->name)
                << "\",\"status\":\"unknown\",\"outcome\":\"refused\","
                << "\"error\":\"service refused the job (shutdown?)\"}\n"
                << std::flush;
      std::cerr << "error: service refused job '" << entry->name << "'\n";
    }
  }

  // Incremental scripts: one driver thread per script replays its ops
  // against a persistent service session — mutations applied between
  // solves, each solve a normal sliced job — and streams one JSONL line
  // per query. The sessions multiplex over the same worker pool as the
  // one-shot jobs above.
  int script_failures = 0;
  std::vector<std::thread> drivers;
  drivers.reserve(scripts.size());
  for (const ManifestEntry* entry : scripts) {
    drivers.emplace_back([&, entry] {
      service::SessionRequest sreq;
      sreq.name = entry->name;
      sreq.threads = entry->limits.threads;
      if (proof_options.verify() && sreq.threads == 1) {
        sreq.proof.log = true;
        sreq.proof.check = true;
      }
      const auto sid = solving.open_session(sreq);
      if (!sid.has_value()) {
        std::lock_guard<std::mutex> lock(output_mutex);
        std::cout << "{\"name\":\"" << json_escape(entry->name)
                  << "\",\"status\":\"unknown\",\"outcome\":\"refused\","
                  << "\"error\":\"service refused the session (shutdown?)\"}\n"
                  << std::flush;
        std::cerr << "error: " << entry->name << ": session refused\n";
        ++script_failures;
        return;
      }
      std::vector<std::vector<Lit>> active;
      std::vector<std::size_t> marks;
      bool failed = false;
      for (const icnf::Op& op : entry->script.ops) {
        bool ok = true;
        switch (op.kind) {
          case icnf::Op::Kind::add_clause:
            active.push_back(op.lits);
            ok = solving.session_add_clause(*sid, op.lits);
            break;
          case icnf::Op::Kind::push:
            marks.push_back(active.size());
            ok = solving.session_push(*sid).has_value();
            break;
          case icnf::Op::Kind::pop:
            active.resize(marks.back());
            marks.pop_back();
            ok = solving.session_pop(*sid);
            break;
          case icnf::Op::Kind::solve: {
            const auto jid =
                solving.session_solve(*sid, op.lits, entry->limits);
            if (!jid.has_value()) {
              ok = false;
              break;
            }
            const service::JobResult result = solving.wait(*jid);
            int model_valid = -1;
            if (result.status == SolveStatus::satisfiable) {
              Cnf formula;
              for (const auto& clause : active) formula.add_clause(clause);
              model_valid = formula.is_satisfied_by(result.model) ? 1 : 0;
              for (const Lit a : op.lits) {
                if (a.var() >= static_cast<Var>(result.model.size()) ||
                    value_of_literal(result.model[a.var()], a) !=
                        Value::true_value) {
                  model_valid = 0;
                }
              }
            }
            bool query_mismatch = false;
            if (args.has_flag("check") &&
                result.status != SolveStatus::unknown) {
              Solver reference;
              for (const auto& clause : active) {
                (void)reference.add_clause(clause);
              }
              const SolveStatus expected = reference.solve_with_assumptions(
                  std::vector<Lit>(op.lits.begin(), op.lits.end()));
              query_mismatch = expected != result.status;
            }
            std::lock_guard<std::mutex> lock(output_mutex);
            if (model_valid == 0) model_failure = true;
            if (result.proof_checked && !result.proof_valid) {
              proof_failure = true;
            }
            if (query_mismatch) {
              ++script_failures;
              std::cerr << "MISMATCH " << result.name
                        << ": session says " << to_string(result.status)
                        << ", scratch solver disagrees\n";
            }
            std::cout << result_json(result, model_valid) << "\n"
                      << std::flush;
            break;
          }
        }
        if (!ok) {
          std::lock_guard<std::mutex> lock(output_mutex);
          std::cerr << "error: " << entry->name
                    << ": session operation failed\n";
          ++script_failures;
          failed = true;
          break;
        }
      }
      (void)failed;
      // Close unconditionally: an abandoned session would pin its engine
      // (and any accumulated proof trace) until service destruction.
      solving.close_session(*sid);
    });
  }
  for (std::thread& driver : drivers) driver.join();

  const std::vector<service::JobResult> results = solving.wait_all();
  solving.shutdown(service::SolverService::Shutdown::drain);

  int mismatches = script_failures;
  if (args.has_flag("check")) {
    std::size_t checked = 0;
    for (const service::JobResult& result : results) {
      if (result.status == SolveStatus::unknown ||
          result.session != service::invalid_session) {
        continue;
      }
      ++checked;
      const ManifestEntry& entry = *regular[result.id - 1];
      Solver reference;
      reference.load(entry.cnf);
      const SolveStatus expected =
          reference.solve_with_assumptions(entry.assumptions);
      if (expected != result.status) {
        ++mismatches;
        std::cerr << "MISMATCH " << entry.name << ": service says "
                  << to_string(result.status) << ", plain solver says "
                  << to_string(expected) << "\n";
      }
    }
    // Session queries were checked per-query on their driver threads;
    // only the one-shot jobs are re-solved here.
    std::cerr << "c check: " << checked - (mismatches - script_failures)
              << "/" << checked << " one-shot verdicts agree, "
              << script_failures << " session query failures\n";
  }

  if (args.has_flag("stats")) {
    const service::ServiceStats stats = solving.stats();
    std::uint64_t dup_binaries = 0;
    std::uint64_t proofs_checked = 0;
    std::uint64_t proofs_valid = 0;
    for (const service::JobResult& result : results) {
      dup_binaries += result.duplicate_binaries_skipped;
      if (result.proof_checked) {
        ++proofs_checked;
        if (result.proof_valid) ++proofs_valid;
      }
    }
    std::cout << "{\"summary\":true,\"submitted\":" << stats.submitted
              << ",\"completed\":" << stats.completed
              << ",\"budget_exhausted\":" << stats.budget_exhausted
              << ",\"deadline_expired\":" << stats.deadline_expired
              << ",\"cancelled\":" << stats.cancelled
              << ",\"errors\":" << stats.errors
              << ",\"slices\":" << stats.slices
              << ",\"preemptions\":" << stats.preemptions
              << ",\"conflicts\":" << stats.conflicts
              << ",\"duplicate_binaries_skipped\":" << dup_binaries
              << ",\"proofs_checked\":" << proofs_checked
              << ",\"proofs_valid\":" << proofs_valid
              << ",\"peak_pending\":" << stats.peak_pending
              << ",\"watchdog_fires\":" << stats.watchdog_fires
              << ",\"slice_deaths\":" << stats.slice_deaths
              << ",\"slice_retries\":" << stats.slice_retries
              << ",\"rejected_pressure\":" << stats.rejected_pressure
              << ",\"solve_s\":" << stats.solve_seconds << "}\n";
  }

  bool telemetry_failure = false;
  if (!metrics_path.empty()) {
    const telemetry::MetricsSnapshot metrics = solving.metrics_snapshot();
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "error: cannot open '" << metrics_path << "' for metrics\n";
      telemetry_failure = true;
    } else if (metrics_path.ends_with(".prom")) {
      out << metrics.to_prometheus();
    } else {
      // Aggregate snapshot plus one object per finished job, so offline
      // analysis can correlate queue/solve latencies with job shape.
      out << "{\"metrics\":" << metrics.to_json() << ",\"per_job\":[";
      for (std::size_t i = 0; i < results.size(); ++i) {
        out << (i == 0 ? "" : ",") << result_json(results[i], -1);
      }
      out << "]}\n";
    }
  }
  if (!trace_path.empty()) {
    std::string error;
    if (!hub->write_trace_file(trace_path,
                               trace_format_name == "jsonl"
                                   ? telemetry::TraceFormat::jsonl
                                   : telemetry::TraceFormat::chrome,
                               &error)) {
      std::cerr << "error: " << error << "\n";
      telemetry_failure = true;
    }
  }

  return (mismatches > 0 || model_failure || proof_failure ||
          telemetry_failure || submit_refused)
             ? 1
             : 0;
}
