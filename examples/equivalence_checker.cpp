// Combinational equivalence checking with the solver — the paper's own
// motivating application (its Miters benchmarks encode exactly this).
//
//   ./build/examples/equivalence_checker [--width 6] [--seed 1]
//
// Checks three pairs: two structurally different adders (equivalent), a
// random circuit against a rewritten copy (equivalent), and against a
// fault-injected copy (not equivalent, with a counterexample).
#include <iostream>

#include "circuit/adders.h"
#include "circuit/circuit_gen.h"
#include "circuit/miter.h"
#include "circuit/rewrite.h"
#include "circuit/tseitin.h"
#include "core/solver.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace berkmin;

namespace {

// Runs the equivalence check and reports; returns true when the circuits
// are equivalent. When they differ, extracts and validates the
// counterexample input vector from the model.
bool check_equivalence(const std::string& label, const Circuit& left,
                       const Circuit& right) {
  const Circuit miter = build_miter(left, right);
  Cnf cnf;
  const std::vector<Lit> lits = encode_tseitin(miter, cnf);
  cnf.add_unit(lits[miter.outputs()[0]]);

  Solver solver(SolverOptions::berkmin());
  solver.load(cnf);
  WallTimer timer;
  const SolveStatus status = solver.solve();
  std::cout << label << ": ";

  if (status == SolveStatus::unsatisfiable) {
    std::cout << "EQUIVALENT";
  } else {
    std::cout << "NOT EQUIVALENT, counterexample inputs:";
    std::vector<bool> input;
    for (const int in : miter.inputs()) {
      input.push_back(solver.model_value(lits[in]));
      std::cout << ' ' << (input.back() ? 1 : 0);
    }
    // Demonstrate the counterexample by simulation.
    const bool differs = left.evaluate(input) != right.evaluate(input);
    std::cout << (differs ? " (verified by simulation)" : " (BUG: no diff!)");
  }
  std::cout << "  [" << timer.seconds() << " s, "
            << solver.stats().conflicts << " conflicts]\n";
  return status == SolveStatus::unsatisfiable;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("width", "6", "adder width in bits");
  args.add_option("gates", "80", "random circuit size");
  args.add_option("seed", "1", "generator seed");
  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  const int width = static_cast<int>(args.get_int("width"));
  const int gates = static_cast<int>(args.get_int("gates"));
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  // 1. Two adder implementations with very different structure.
  check_equivalence("ripple-carry vs carry-lookahead adder (" +
                        std::to_string(width) + " bits)",
                    ripple_carry_adder(width), carry_lookahead_adder(width));

  // 2. A random circuit against a semantics-preserving rewrite of itself.
  RandomCircuitParams params;
  params.num_inputs = 8;
  params.num_gates = gates;
  params.num_outputs = 4;
  const Circuit base = random_circuit(params, rng);
  check_equivalence("random circuit vs rewritten copy", base,
                    rewrite_equivalent(base, rng));

  // 3. The same circuit with an injected gate fault.
  if (const auto faulty = inject_fault(base, rng)) {
    check_equivalence("random circuit vs fault-injected copy", base, *faulty);
  } else {
    std::cout << "fault injection found no observable fault (rare)\n";
  }
  return 0;
}
