// Planning as satisfiability: solve Towers of Hanoi by SAT (the paper's
// Hanoi benchmark class), decode the plan from the model, and print it.
//
//   ./build/examples/hanoi_planner [--disks 4] [--moves 15] [--preset chaff]
#include <iostream>

#include "core/solver.h"
#include "gen/hanoi.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace berkmin;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("disks", "4", "number of disks");
  args.add_option("moves", "-1", "plan horizon (-1 = optimal 2^n - 1)");
  args.add_option("preset", "berkmin", "berkmin or chaff");
  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  const int disks = static_cast<int>(args.get_int("disks"));
  int moves = static_cast<int>(args.get_int("moves"));
  if (moves < 0) moves = gen::HanoiEncoding::optimal_moves(disks);

  std::cout << "Towers of Hanoi: " << disks << " disks, horizon " << moves
            << " moves (optimal is " << gen::HanoiEncoding::optimal_moves(disks)
            << ")\n";

  const gen::HanoiEncoding encoding(disks, moves);
  std::cout << "encoded as " << encoding.cnf().num_vars() << " variables, "
            << encoding.cnf().num_clauses() << " clauses\n";

  Solver solver(args.get_string("preset") == "chaff"
                    ? SolverOptions::chaff_like()
                    : SolverOptions::berkmin());
  solver.load(encoding.cnf());

  WallTimer timer;
  const SolveStatus status = solver.solve();
  std::cout << "solve: " << to_string(status) << " in " << timer.seconds()
            << " s (" << solver.stats().decisions << " decisions, "
            << solver.stats().conflicts << " conflicts)\n";

  if (status == SolveStatus::unsatisfiable) {
    std::cout << "no plan with " << moves << " moves exists\n";
    return 20;
  }
  if (status != SolveStatus::satisfiable) return 0;

  const auto plan = encoding.decode(solver.model());
  if (plan.empty()) {
    std::cerr << "error: model did not decode to a legal plan (bug)\n";
    return 1;
  }
  std::cout << "plan (disk: from -> to):\n";
  for (std::size_t step = 0; step < plan.size(); ++step) {
    std::cout << "  " << (step + 1) << ". disk " << plan[step].disk << ": peg "
              << plan[step].from << " -> peg " << plan[step].to << "\n";
  }
  std::cout << "plan verified legal; all " << disks << " disks on peg 2\n";
  return 10;
}
