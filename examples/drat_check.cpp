// Standalone DRAT proof checker over the in-tree proof::DratChecker.
//
//   ./build/examples/drat_check formula.cnf proof.drat
//   ./build/examples/drat_check --generate hole:6 proof.drat --core core.cnf
//   ./build/examples/drat_check formula.cnf proof.drat --trim trimmed.drat
//
// The trace format (text or binary DRAT) is autodetected. Exit codes:
// 0 = the proof verifies end-to-end (the formula is certified
// unsatisfiable), 1 = verification failure or usage error.
#include <iostream>

#include "cnf/dimacs.h"
#include "gen/registry.h"
#include "proof/drat_checker.h"
#include "proof/drat_file.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace berkmin;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  args.add_option("generate", "",
                  "check against a generated instance instead of a DIMACS "
                  "file (specs as in dimacs_solver --list-generators)");
  args.add_option("core", "",
                  "write the extracted unsatisfiable core (original clauses "
                  "the trimmed proof rests on) to this file as DIMACS");
  args.add_option("trim", "", "write the trimmed proof to this file");
  args.add_flag("binary", "write the trimmed proof in binary DRAT");
  args.add_flag("quiet", "print nothing, report through the exit code only");
  args.add_flag("help", "show this help");

  if (!args.parse()) {
    std::cerr << "error: " << args.error() << "\n";
    return 1;
  }
  if (args.has_flag("help")) {
    std::cout << args.help(
        "drat_check — verify a DRAT trace, trim it, extract an UNSAT core");
    return 0;
  }
  const bool quiet = args.has_flag("quiet");

  Cnf cnf;
  std::string proof_path;
  try {
    if (const std::string spec = args.get_string("generate"); !spec.empty()) {
      if (args.positional().size() != 1) {
        std::cerr << "error: with --generate, give exactly the proof file\n";
        return 1;
      }
      std::string error;
      auto instance = gen::generate_from_spec(spec, &error);
      if (!instance) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      cnf = std::move(instance->cnf);
      proof_path = args.positional()[0];
    } else {
      if (args.positional().size() != 2) {
        std::cerr << "error: want <formula.cnf> <proof.drat> (or --generate "
                     "<spec> <proof.drat>)\n";
        return 1;
      }
      cnf = dimacs::read_file(args.positional()[0]);
      proof_path = args.positional()[1];
    }
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }

  proof::Proof trace;
  std::string error;
  proof::DratFormat detected = proof::DratFormat::text;
  if (!proof::read_drat_file(proof_path, &trace, &error, &detected)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!quiet) {
    std::cout << "c " << cnf.num_vars() << " variables, " << cnf.num_clauses()
              << " clauses; " << trace.size() << " proof steps ("
              << trace.num_adds() << " adds, " << trace.num_deletes()
              << " deletes, "
              << (detected == proof::DratFormat::binary ? "binary" : "text")
              << " format)\n";
  }

  WallTimer timer;
  proof::DratChecker checker(cnf);
  const proof::CheckResult result = checker.check(trace);
  if (!result.valid) {
    if (!quiet) {
      std::cout << "s NOT VERIFIED\n";
      std::cerr << "error: " << result.error << "\n";
    }
    return 1;
  }
  if (!quiet) {
    std::cout << "c verified " << result.checked_adds << " additions ("
              << result.skipped_deletions << " of " << result.deletions
              << " deletions skipped) in " << timer.seconds() << " s\n"
              << "c trimmed proof: " << checker.trimmed().num_adds()
              << " adds; core: " << checker.core().size() << " of "
              << cnf.num_clauses() << " original clauses\n";
  }

  try {
    if (const std::string path = args.get_string("core"); !path.empty()) {
      dimacs::write_file(path,
                         proof::DratChecker::core_formula(cnf, checker.core()),
                         "unsat core extracted by drat_check");
      if (!quiet) std::cout << "c wrote core to " << path << "\n";
    }
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
  if (const std::string path = args.get_string("trim"); !path.empty()) {
    const proof::DratFormat format = args.has_flag("binary")
                                         ? proof::DratFormat::binary
                                         : proof::DratFormat::text;
    if (!proof::write_drat_file(path, checker.trimmed(), format, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    if (!quiet) std::cout << "c wrote trimmed proof to " << path << "\n";
  }

  if (!quiet) std::cout << "s VERIFIED\n";
  return 0;
}
