// Table 4 — "Branch selection".
//
// BerkMin's database-symmetrizing polarity heuristic against the five
// alternatives the paper evaluates for decisions made on the current top
// clause: Sat_top, Unsat_top, Take_0, Take_1, Take_rand. The paper finds
// BerkMin's heuristic and Take_rand clearly best, BerkMin's slightly
// ahead — evidence that branch order matters in the presence of restarts.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const int violations = run_class_comparison(
      "Table 4: branch selection",
      {{"BerkMin", SolverOptions::berkmin()},
       {"Sat_top", SolverOptions::with_polarity(PolarityPolicy::sat_top)},
       {"Unsat_top", SolverOptions::with_polarity(PolarityPolicy::unsat_top)},
       {"Take_0", SolverOptions::with_polarity(PolarityPolicy::take_0)},
       {"Take_1", SolverOptions::with_polarity(PolarityPolicy::take_1)},
       {"Take_rand", SolverOptions::with_polarity(PolarityPolicy::take_rand)}},
      args);

  print_paper_reference("Table 4 (totals row)",
      "            BerkMin   Sat_top   Unsat_top       Take_0      Take_1     Take_rand\n"
      "Total      20411.85  36,152.8  >155,393(2)   53,623.68  >213,808(3)   24,844.75");
  return violations == 0 ? 0 : 1;
}
