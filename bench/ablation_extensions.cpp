// Ablation bench for the beyond-paper extensions called out in DESIGN.md:
// learned-clause minimization, Luby restarts, and the widened top-clause
// window (the paper's Remark 2). Compares each against stock BerkMin on
// the full class suite — the same protocol as the paper's own ablations.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);

  SolverOptions minimize = SolverOptions::berkmin();
  minimize.minimize_learned = true;

  SolverOptions luby = SolverOptions::berkmin();
  luby.restart_policy = RestartPolicy::luby;
  luby.luby_unit = 100;

  SolverOptions window = SolverOptions::berkmin();
  window.top_clause_window = 4;

  const int violations = run_class_comparison(
      "Extensions ablation: minimization / Luby restarts / top-clause window",
      {{"BerkMin", SolverOptions::berkmin()},
       {"Minimize", minimize},
       {"Luby", luby},
       {"Window4", window}},
      args);
  return violations == 0 ? 0 : 1;
}
