// Table 5 — "Database management".
//
// BerkMin's age/activity/length-aware clause retention against the
// GRASP-style Limited_keeping rule (drop everything longer than 42
// literals). The paper reports >2x losses for the ablation on Hanoi,
// Miters and Fvp_unsat2.0.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const int violations = run_class_comparison(
      "Table 5: clause database management",
      {{"BerkMin", SolverOptions::berkmin()},
       {"Limited_keeping", SolverOptions::limited_keeping()}},
      args);

  print_paper_reference("Table 5",
      "Class            BerkMin(s)  Limited_keeping(s)\n"
      "Hole                  231.1              696.79\n"
      "Blocksworld           10.26                7.52\n"
      "Par16                  8.83                7.95\n"
      "Sss1.0                  8.2                8.87\n"
      "Sss1.0a               10.14                 9.4\n"
      "Sss_sat1.0           235.02              235.42\n"
      "Fvp_unsat1.0         765.16              1328.1\n"
      "Vliw_sat1.0         6199.52              5858.0\n"
      "Beijing              409.24              388.52\n"
      "Hanoi               1409.82           17,566.16\n"
      "Miters              4584.72             9143.33\n"
      "Fvp_unsat2.0        6539.84           22,630.55\n"
      "Total              20411.85           57,880.71");
  return violations == 0 ? 0 : 1;
}
