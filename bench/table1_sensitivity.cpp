// Table 1 — "Changing sensitivity of decision-making".
//
// BerkMin (var_activity from every clause responsible for the conflict)
// against Less_sensitivity (Chaff's rule: only the final conflict clause's
// variables). The paper's headline: the full rule wins on the hard
// classes Hanoi, Miters and Fvp_unsat2.0.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const int violations = run_class_comparison(
      "Table 1: sensitivity of decision-making",
      {{"BerkMin", SolverOptions::berkmin()},
       {"Less_sensitivity", SolverOptions::less_sensitivity()}},
      args);

  print_paper_reference("Table 1",
      "Class            BerkMin(s)  Less_sensitivity(s)\n"
      "Hole                  231.1                74.65\n"
      "Blocksworld           10.26                 8.18\n"
      "Par16                  8.83                11.31\n"
      "Sss1.0                  8.2                 10.5\n"
      "Sss1.0a               10.14                20.29\n"
      "Sss_sat1.0           235.02                256.5\n"
      "Fvp_unsat1.0         765.16               887.59\n"
      "Vliw_sat1.0         6199.52               7263.5\n"
      "Beijing              409.24               274.92\n"
      "Hanoi               1409.82              8814.16\n"
      "Miters              4584.72              8070.17\n"
      "Fvp_unsat2.0        6539.84            25,806.79\n"
      "Total              20411.85            51,498.26");
  return violations == 0 ? 0 : 1;
}
