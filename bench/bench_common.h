// Shared driver for the per-table bench binaries: runs solver
// configurations over the paper's benchmark classes and prints rows in
// the same format as the paper (finished time, or "> T (k)" with k
// aborted at the timeout).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.h"
#include "harness/runner.h"
#include "harness/suites.h"

namespace berkmin::bench {

struct Column {
  std::string label;
  SolverOptions options;
};

struct BenchArgs {
  int scale = 2;
  double timeout = 10.0;
  std::uint64_t seed = 7;
  // > 1 solves every instance through a schedule-jittered portfolio of the
  // column's configuration (see harness::run_instance).
  int threads = 1;
};

// Parses --scale/--timeout/--seed/--threads (exits on --help or bad flags).
BenchArgs parse_bench_args(int argc, char** argv, double default_timeout = 10.0,
                           int default_scale = 2);

// Runs every paper class against every column and prints the comparison
// table plus a Total row. Returns the number of expectation violations
// (must be zero; non-zero exits the binary with an error).
int run_class_comparison(const std::string& title,
                         const std::vector<Column>& columns,
                         const BenchArgs& args);

// Prints the paper's corresponding table for side-by-side comparison.
void print_paper_reference(const std::string& caption, const char* text);

}  // namespace berkmin::bench
