// Table 7 — "Benchmarks on which BerkMin dominates": the hard classes
// (Beijing-like adders, Miters, Hanoi, Fvp_unsat2.0-like pipes) with
// runtimes and abort counts for the Chaff-like baseline and BerkMin.
// The paper's robustness claim: Chaff aborts on three of the four
// classes while BerkMin finishes everything.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const char* classes[] = {"Beijing", "Miters", "Hanoi", "Fvp_unsat2.0"};

  std::cout << "=== Table 7: classes where BerkMin dominates ===\n"
            << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance\n";

  Table table({"Class of benchmarks", "Number of instances", "zChaff time (s)",
               "zChaff aborted", "BerkMin time (s)", "BerkMin aborted"});
  int violations = 0;
  for (const char* name : classes) {
    const harness::Suite suite = harness::suite_by_name(name, args.scale, args.seed);
    const harness::ClassResult chaff =
        harness::run_suite(suite, SolverOptions::chaff_like(), args.timeout);
    const harness::ClassResult berkmin =
        harness::run_suite(suite, SolverOptions::berkmin(), args.timeout);
    violations += chaff.wrong + berkmin.wrong;
    table.add_row({suite.name, std::to_string(suite.instances.size()),
                   chaff.format_time(args.timeout), std::to_string(chaff.aborted),
                   berkmin.format_time(args.timeout),
                   std::to_string(berkmin.aborted)});
  }
  std::cout << table.to_string();
  if (violations > 0) std::cout << "ERROR: expectation violations!\n";

  print_paper_reference("Table 7",
      "Class         #   zChaff time (aborted)    BerkMin time (aborted)\n"
      "Beijing      16   247.6 (>120,247.6)  (2)   494.0  (0)\n"
      "Miters        5   1917.4 (>121,917.4) (2)   3477.6 (0)\n"
      "Hanoi         3   50,832.1            (0)   1401.3 (0)\n"
      "Fvp-unsat2.0 22   26,944.7 (>146,944.7)(2)  6869.7 (0)");
  return violations == 0 ? 0 : 1;
}
