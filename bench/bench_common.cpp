#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "util/cli.h"
#include "util/table.h"

namespace berkmin::bench {

BenchArgs parse_bench_args(int argc, char** argv, double default_timeout,
                           int default_scale) {
  ArgParser parser(argc, argv);
  parser.add_option("scale", std::to_string(default_scale),
                    "instance scale: 1 = smoke, 2 = default, 3+ = closer to "
                    "paper hardness");
  parser.add_option("timeout", std::to_string(default_timeout),
                    "per-instance timeout in seconds (the paper used 60000)");
  parser.add_option("seed", "7", "generator seed");
  parser.add_option("threads", "1",
                    "portfolio workers per solve (clause sharing on)");
  parser.add_flag("help", "show this help");
  if (!parser.parse()) {
    std::cerr << "error: " << parser.error() << "\n";
    std::exit(1);
  }
  if (parser.has_flag("help")) {
    std::cout << parser.help("BerkMin reproduction bench driver");
    std::exit(0);
  }
  BenchArgs args;
  args.scale = static_cast<int>(parser.get_int("scale"));
  args.timeout = parser.get_double("timeout");
  args.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  args.threads = static_cast<int>(parser.get_int("threads"));
  return args;
}

int run_class_comparison(const std::string& title,
                         const std::vector<Column>& columns,
                         const BenchArgs& args) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance, seed " << args.seed;
  if (args.threads > 1) std::cout << ", " << args.threads << " threads";
  std::cout << "\n";
  for (const Column& column : columns) {
    std::cout << "  " << column.label << ": " << column.options.describe()
              << "\n";
  }

  std::vector<std::string> headers{"Class of benchmarks"};
  for (const Column& column : columns) headers.push_back(column.label + " (s)");
  Table table(headers);

  std::vector<std::vector<harness::ClassResult>> per_column(columns.size());
  int violations = 0;

  const std::vector<harness::Suite> suites =
      harness::paper_classes(args.scale, args.seed);
  for (const harness::Suite& suite : suites) {
    std::vector<std::string> row{suite.name};
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const harness::ClassResult result =
          harness::run_suite(suite, columns[c].options, args.timeout,
                             args.threads);
      violations += result.wrong;
      row.push_back(result.format_time(args.timeout));
      per_column[c].push_back(result);
    }
    table.add_row(std::move(row));
  }

  std::vector<std::string> total_row{"Total"};
  for (std::size_t c = 0; c < columns.size(); ++c) {
    total_row.push_back(
        harness::total_row(per_column[c]).format_time(args.timeout));
  }
  table.add_row(std::move(total_row));

  std::cout << table.to_string();
  if (violations > 0) {
    std::cout << "ERROR: " << violations << " expectation violations!\n";
  }
  return violations;
}

void print_paper_reference(const std::string& caption, const char* text) {
  std::cout << "\n--- paper reference (" << caption << ", PIII-700 / Ultra-80"
            << " wall clock; shapes, not absolute numbers, are comparable) ---\n"
            << text << "\n";
}

}  // namespace berkmin::bench
