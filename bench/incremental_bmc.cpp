// Incremental push/pop vs scratch solving on BMC-style equivalence
// families (ISSUE 5 acceptance benchmark, BENCH_PR5.json; the
// trail_saving section is the ISSUE 10 acceptance payload,
// BENCH_PR10.json).
//
// Three query patterns over miter(unroll(C, k), rewrite(unroll(C, k))):
//
//  * property-in-group: the base CNF is the two Tseitin-encoded circuit
//    copies (satisfiable); each query pushes a group asserting the miter
//    output (UNSAT, the circuits are equivalent), solves, and pops. The
//    incremental solver re-answers later queries from retained
//    circuit-consistency lemmas and warm activities; the scratch solver
//    re-proves everything per query.
//
//  * junk-in-group: the base CNF is the full UNSAT miter; each query
//    pushes a group of side constraints, solves, pops, and re-solves the
//    popped (base) formula. The base refutation is group-independent, so
//    the incremental re-solve after the pop rides on retained lemmas.
//
//  * trail-saving: IC3-shaped assumption streams — every query shares a
//    long assumption prefix (fixed input constraints) and varies only
//    the tail, with no clause edits in between. The same stream runs
//    with SolverOptions::save_trail off and on: answers must be
//    identical, and the saving run must spend measurably fewer
//    propagations (the shared prefix's implied trail is resumed, not
//    re-propagated).
//
// Prints one JSON object (the BENCH_PR5/PR10.json payload) to stdout.
#include <algorithm>
#include <iostream>
#include <tuple>
#include <string>
#include <vector>

#include "circuit/circuit_gen.h"
#include "circuit/miter.h"
#include "circuit/rewrite.h"
#include "circuit/tseitin.h"
#include "circuit/unroll.h"
#include "core/solver.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace berkmin;

namespace {

struct Family {
  std::string name;
  Cnf base;        // satisfiable circuit encoding
  Lit property;    // asserting this makes it UNSAT
};

Family build_family(int inputs, int gates, int latches, int cycles,
                    std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitParams params;
  params.num_inputs = inputs;
  params.num_gates = gates;
  params.num_outputs = 2;
  params.num_latches = latches;
  const Circuit sequential = random_circuit(params, rng);
  const Circuit unrolled = unroll(sequential, cycles);
  const Circuit other = rewrite_equivalent(unrolled, rng);
  const Circuit miter = build_miter(unrolled, other);

  Family family;
  family.name = "bmc-miter-i" + std::to_string(inputs) + "-g" +
                std::to_string(gates) + "-c" + std::to_string(cycles) +
                "-s" + std::to_string(seed);
  const std::vector<Lit> gate_lits = encode_tseitin(miter, family.base);
  family.property = gate_lits[static_cast<std::size_t>(miter.outputs()[0])];
  return family;
}

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

}  // namespace

int main() {
  std::cout << "{\n  \"bench\": \"incremental_bmc\",\n  \"families\": [\n";
  bool first_family = true;

  for (const auto& [inputs, gates, latches, cycles, seed] :
       std::vector<std::tuple<int, int, int, int, std::uint64_t>>{
           {6, 60, 8, 5, 2},
           {7, 80, 8, 6, 4},
           {6, 70, 10, 7, 9},
       }) {
    const Family family = build_family(inputs, gates, latches, cycles, seed);
    constexpr int kQueries = 6;

    // --- property-in-group: repeated UNSAT property queries -------------
    std::vector<double> scratch_ms;
    for (int q = 0; q < kQueries; ++q) {
      Solver scratch;
      scratch.load(family.base);
      scratch.add_clause({family.property});
      WallTimer timer;
      const SolveStatus status = scratch.solve();
      scratch_ms.push_back(timer.seconds() * 1e3);
      if (status != SolveStatus::unsatisfiable) return 1;
    }

    Solver incremental;
    incremental.load(family.base);
    std::vector<double> inc_ms;
    for (int q = 0; q < kQueries; ++q) {
      incremental.push_group();
      incremental.add_clause({family.property});
      WallTimer timer;
      const SolveStatus status = incremental.solve();
      inc_ms.push_back(timer.seconds() * 1e3);
      if (status != SolveStatus::unsatisfiable) return 1;
      incremental.pop_group();
    }
    // Query 0 pays the same full proof as scratch; the interesting number
    // is the steady-state re-query cost after pops.
    const double inc_requery =
        median(std::vector<double>(inc_ms.begin() + 1, inc_ms.end()));
    const double scratch_requery =
        median(std::vector<double>(scratch_ms.begin() + 1, scratch_ms.end()));

    // --- junk-in-group: re-solve of the popped (UNSAT base) formula -----
    Cnf unsat_base = family.base;
    unsat_base.add_unit(family.property);
    double scratch_unsat_ms = 0.0;
    {
      Solver scratch;
      scratch.load(unsat_base);
      WallTimer timer;
      if (scratch.solve() != SolveStatus::unsatisfiable) return 1;
      scratch_unsat_ms = timer.seconds() * 1e3;
    }
    double inc_after_pop_ms = 0.0;
    std::uint64_t retained = 0;
    std::uint64_t dropped = 0;
    {
      Solver solver;
      solver.load(unsat_base);
      solver.push_group();
      // Side constraints over the primary inputs.
      Rng rng(seed + 1);
      for (int i = 0; i < 6; ++i) {
        solver.add_clause({Lit(static_cast<Var>(rng.below(inputs)), rng.coin()),
                           Lit(static_cast<Var>(rng.below(inputs)), rng.coin())});
      }
      if (solver.solve() != SolveStatus::unsatisfiable) return 1;
      solver.pop_group();
      retained = solver.stats().pop_retained_learned;
      dropped = solver.stats().pop_dropped_learned;
      WallTimer timer;
      if (solver.solve() != SolveStatus::unsatisfiable) return 1;
      inc_after_pop_ms = timer.seconds() * 1e3;
    }

    // --- trail-saving: shared-prefix assumption stream ------------------
    // Every query assumes the same `inputs` input constraints plus one
    // varying tail literal, with no clause edits in between — the shape
    // of consecutive IC3 relative-induction queries. The identical
    // stream runs with save_trail off and on.
    constexpr int kStreamQueries = 20;
    std::vector<Lit> prefix;
    for (int v = 0; v < inputs; ++v) {
      prefix.push_back(Lit(static_cast<Var>(v), ((seed >> v) & 1) != 0));
    }
    struct StreamResult {
      double ms = 0.0;
      std::uint64_t propagations = 0;
      std::uint64_t saves = 0;
      std::uint64_t saved_literals = 0;
      std::vector<SolveStatus> answers;
    };
    const auto run_stream = [&](bool save) {
      StreamResult r;
      SolverOptions opts;
      opts.save_trail = save;
      Solver solver(opts);
      solver.load(family.base);
      WallTimer timer;
      for (int q = 0; q < kStreamQueries; ++q) {
        std::vector<Lit> assumptions = prefix;
        assumptions.push_back(
            Lit(static_cast<Var>(inputs + q % 8), q % 2 == 0));
        r.answers.push_back(solver.solve_with_assumptions(assumptions));
      }
      r.ms = timer.seconds() * 1e3;
      r.propagations = solver.stats().propagations;
      r.saves = solver.stats().trail_saves;
      r.saved_literals = solver.stats().trail_saved_literals;
      return r;
    };
    const StreamResult off = run_stream(false);
    const StreamResult on = run_stream(true);
    if (on.answers != off.answers) return 1;  // saving must not change answers
    if (off.saves != 0) return 1;
    const double saved_pct =
        off.propagations > 0
            ? 100.0 * (1.0 - static_cast<double>(on.propagations) /
                                 static_cast<double>(off.propagations))
            : 0.0;

    if (!first_family) std::cout << ",\n";
    first_family = false;
    std::cout << "    {\n      \"name\": \"" << family.name << "\",\n"
              << "      \"vars\": " << family.base.num_vars() << ",\n"
              << "      \"clauses\": " << family.base.num_clauses() << ",\n"
              << "      \"property_requery\": {\"scratch_ms\": "
              << scratch_requery << ", \"incremental_ms\": " << inc_requery
              << ", \"speedup\": "
              << (inc_requery > 0 ? scratch_requery / inc_requery : 0.0)
              << "},\n"
              << "      \"resolve_after_pop\": {\"scratch_ms\": "
              << scratch_unsat_ms << ", \"incremental_ms\": "
              << inc_after_pop_ms << ", \"speedup\": "
              << (inc_after_pop_ms > 0 ? scratch_unsat_ms / inc_after_pop_ms
                                       : 0.0)
              << ", \"lemmas_retained\": " << retained
              << ", \"lemmas_dropped\": " << dropped << "},\n"
              << "      \"trail_saving\": {\"off_ms\": " << off.ms
              << ", \"on_ms\": " << on.ms
              << ", \"off_propagations\": " << off.propagations
              << ", \"on_propagations\": " << on.propagations
              << ", \"propagations_saved_pct\": " << saved_pct
              << ", \"trail_saves\": " << on.saves
              << ", \"trail_saved_literals\": " << on.saved_literals
              << "}\n    }";
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}
