// Table 9 — "Details ... (database size)": per-instance clause-database
// ratios. Column 1: (all generated conflict clauses + initial) / initial
// for the Chaff-like baseline; column 2: the same for BerkMin; column 3:
// BerkMin's peak live database over the initial CNF — the paper's
// evidence that BerkMin keeps at most ~4x the initial CNF in memory.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv, /*default_timeout=*/30.0);

  std::cout << "=== Table 9: clause database sizes ===\n"
            << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance\n";

  Table table({"Instance name", "Satisfiable", "zChaff DB/initial",
               "BerkMin DB/initial", "BerkMin largest/initial"});
  int violations = 0;
  for (const harness::Instance& instance :
       harness::detail_instances(args.scale, args.seed)) {
    const harness::RunResult chaff =
        harness::run_instance(instance, SolverOptions::chaff_like(), args.timeout);
    const harness::RunResult berkmin =
        harness::run_instance(instance, SolverOptions::berkmin(), args.timeout);
    violations += chaff.expectation_violated + berkmin.expectation_violated;
    table.add_row({instance.name,
                   instance.expected == gen::Expectation::sat ? "Yes" : "No",
                   format_ratio(chaff.stats.db_generated_ratio()),
                   format_ratio(berkmin.stats.db_generated_ratio()),
                   format_ratio(berkmin.stats.db_peak_ratio())});
  }
  std::cout << table.to_string();
  if (violations > 0) std::cout << "ERROR: expectation violations!\n";

  print_paper_reference("Table 9",
      "Instance     Sat  zChaff DB/init  BerkMin DB/init  BerkMin largest/init\n"
      "9vliw_bp_mc  No   2.40            1.88             1.04\n"
      "Hanoi5       Yes  68.90           8.68             2.38\n"
      "Hanoi6       Yes  93.30           19.58            4.19\n"
      "4pipe        No   3.09            1.49             1.08\n"
      "5pipe        No   2.70            1.09             1.01\n"
      "6pipe        No   5.13            1.71             1.05\n"
      "7pipe*       No   7.21            1.95             1.05");
  return violations == 0 ? 0 : 1;
}
