// Table 6 — "Benchmarks on which Chaff's and BerkMin's performances are
// comparable": per-class instance counts and total runtimes for the
// Chaff-like baseline and BerkMin.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const char* classes[] = {"Blocksworld", "Hole",        "Par16",
                           "Sss1.0",      "Sss1.0a",     "Sss_sat1.0",
                           "Fvp_unsat1.0", "Vliw_sat1.0"};

  std::cout << "=== Table 6: classes where Chaff and BerkMin are comparable ===\n"
            << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance\n";

  Table table({"Class of benchmarks", "Number of instances", "zChaff (s)",
               "BerkMin (s)"});
  int violations = 0;
  for (const char* name : classes) {
    const harness::Suite suite = harness::suite_by_name(name, args.scale, args.seed);
    const harness::ClassResult chaff =
        harness::run_suite(suite, SolverOptions::chaff_like(), args.timeout);
    const harness::ClassResult berkmin =
        harness::run_suite(suite, SolverOptions::berkmin(), args.timeout);
    violations += chaff.wrong + berkmin.wrong;
    table.add_row({suite.name, std::to_string(suite.instances.size()),
                   chaff.format_time(args.timeout),
                   berkmin.format_time(args.timeout)});
  }
  std::cout << table.to_string();
  if (violations > 0) std::cout << "ERROR: expectation violations!\n";

  print_paper_reference("Table 6",
      "Class          #   zChaff(s)  BerkMin(s)\n"
      "Blocksworld    7        33.2         9.0\n"
      "Hole           5        38.0       339.0\n"
      "Par16         10        27.7        13.6\n"
      "Sss 1.0       48        85.3        13.4\n"
      "Sss 1.0a       8        32.2        17.9\n"
      "Sss-sat 1.0  100       593.9       254.4\n"
      "Fvp-unsat 1.0  4      1140.8      1637.4\n"
      "Vliw-sat 1.0 100    12,334.2      7305.0");
  return violations == 0 ? 0 : 1;
}
