// Table 3 — "Skin effect".
//
// For five hard instances, prints f(r): how often the current top clause
// sat at distance r from the top of the conflict-clause stack when a
// branching variable was chosen. The paper's observation: f(r) decreases
// quickly in r — the youngest clauses drive almost all decisions — with
// f(0) small because the topmost clause is consumed by BCP immediately
// after being learned (it only surfaces after a restart).
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/solver.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv, /*default_timeout=*/60.0);

  const std::vector<harness::Instance> instances =
      harness::skin_effect_instances(args.scale, args.seed);

  std::cout << "=== Table 3: skin effect ===\n";
  std::cout << "instances: ";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    std::cout << "(" << i + 1 << ") " << instances[i].name << "  ";
  }
  std::cout << "\n";

  std::vector<SolverStats> stats;
  int violations = 0;
  for (const harness::Instance& instance : instances) {
    const harness::RunResult run =
        harness::run_instance(instance, SolverOptions::berkmin(), args.timeout);
    if (run.expectation_violated) ++violations;
    stats.push_back(run.stats);
  }

  std::vector<std::string> headers{"Distance"};
  for (std::size_t i = 0; i < instances.size(); ++i) {
    headers.push_back(std::to_string(i + 1));
  }
  Table table(headers);
  const std::size_t rows[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 50, 100, 500,
                              1000, 2000};
  for (const std::size_t r : rows) {
    std::vector<std::string> row{"f(" + std::to_string(r) + ")"};
    for (const SolverStats& s : stats) row.push_back(format_count(s.skin_at(r)));
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();

  // The paper's qualitative claim, checked numerically: f(r) decreases as
  // r grows — the smaller the distance, the more often the clause drives
  // a decision. Verified over decades of r: f(1) > f(10) > f(100).
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const std::uint64_t f1 = stats[i].skin_at(1);
    const std::uint64_t f10 = stats[i].skin_at(10);
    const std::uint64_t f100 = stats[i].skin_at(100);
    const bool decreasing = f1 > f10 && f10 > f100;
    std::printf("instance %zu: f(1) = %llu > f(10) = %llu > f(100) = %llu  %s\n",
                i + 1, static_cast<unsigned long long>(f1),
                static_cast<unsigned long long>(f10),
                static_cast<unsigned long long>(f100),
                decreasing ? "[skin effect holds]" : "[not decreasing!]");
  }

  print_paper_reference("Table 3 (excerpt)",
      "Distance        1        2       3        4       5\n"
      "f(0)         2086     2235     585     3678     409\n"
      "f(1)      161,770  178,791  61,615  111,221  36,849\n"
      "f(2)       91,154   93,820  26,021   53,224  17,715\n"
      "f(5)       42,698   45,668  10,151   27,813   9485\n"
      "f(10)      21,551   25,700   5088   15,616    5706\n"
      "f(100)        964     3265     253     2155     596\n"
      "f(1000)        39      134       7      466     138\n"
      "f(2000)         4       21       3      252      39");
  return violations == 0 ? 0 : 1;
}
