// Microbenchmarks (google-benchmark) for the engine's hot paths: BCP
// throughput, conflict analysis, full solves per family, encoding and
// generation costs. Not a paper table — used to catch performance
// regressions in the substrate that the table benches build on.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "circuit/adders.h"
#include "circuit/miter.h"
#include "circuit/tseitin.h"
#include "core/solver.h"
#include "gen/hanoi.h"
#include "gen/parity.h"
#include "gen/pigeonhole.h"
#include "gen/random_ksat.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace {

using namespace berkmin;

// Shared hub for the *Traced benchmark variants; dumped at exit when
// BENCH_METRICS_OUT is set (see bench/run_bench.sh).
telemetry::Telemetry& bench_hub() {
  static telemetry::Telemetry hub;
  return hub;
}

void BM_PropagationThroughput(benchmark::State& state) {
  // Long implication chains: measures raw two-watched-literal BCP.
  const int chain = static_cast<int>(state.range(0));
  Cnf cnf(chain + 1);
  for (int i = 0; i < chain; ++i) {
    cnf.add_binary(Lit::negative(i), Lit::positive(i + 1));
  }
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    solver.load(cnf);
    state.ResumeTiming();
    solver.assume(Lit::positive(0));
    benchmark::DoNotOptimize(solver.propagate());
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_PropagationThroughput)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PropagationThroughputTraced(benchmark::State& state) {
  // Same workload with a full telemetry sink attached (phase timers,
  // counters, trace ring): the tracing-overhead counterpart of
  // BM_PropagationThroughput for BENCH_PR6.json.
  const int chain = static_cast<int>(state.range(0));
  Cnf cnf(chain + 1);
  for (int i = 0; i < chain; ++i) {
    cnf.add_binary(Lit::negative(i), Lit::positive(i + 1));
  }
  telemetry::SolverTelemetry sink(bench_hub(),
                                  bench_hub().trace().ring("bench-bcp"));
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    solver.set_telemetry(&sink);
    solver.load(cnf);
    state.ResumeTiming();
    solver.assume(Lit::positive(0));
    benchmark::DoNotOptimize(solver.propagate());
  }
  state.SetItemsProcessed(state.iterations() * chain);
}
BENCHMARK(BM_PropagationThroughputTraced)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SolveRandom3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const Cnf cnf = gen::random_ksat(vars, static_cast<int>(vars * 4.26), 3,
                                     ++seed);
    Solver solver;
    solver.load(cnf);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolveRandom3Sat)->Arg(50)->Arg(100)->Arg(150);

void BM_SolvePigeonhole(benchmark::State& state) {
  const Cnf cnf = gen::pigeonhole(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Solver solver;
    solver.load(cnf);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolvePigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_SolveChaffPigeonhole(benchmark::State& state) {
  const Cnf cnf = gen::pigeonhole(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Solver solver(SolverOptions::chaff_like());
    solver.load(cnf);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolveChaffPigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_SolveParityUnsat(benchmark::State& state) {
  gen::ParityParams params;
  params.num_vars = static_cast<int>(state.range(0));
  params.num_equations = params.num_vars * 3 / 2;
  params.equation_size = 4;
  params.satisfiable = false;
  params.seed = 11;
  const Cnf cnf = gen::parity_instance(params);
  for (auto _ : state) {
    Solver solver;
    solver.load(cnf);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_SolveParityUnsat)->Arg(16)->Arg(24);

void BM_AdderMiterEquivalence(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  const Cnf cnf =
      miter_cnf(ripple_carry_adder(width), carry_lookahead_adder(width));
  for (auto _ : state) {
    Solver solver;
    solver.load(cnf);
    benchmark::DoNotOptimize(solver.solve());
  }
}
BENCHMARK(BM_AdderMiterEquivalence)->Arg(4)->Arg(6)->Arg(8);

void BM_TseitinEncode(benchmark::State& state) {
  const Circuit adder = carry_select_adder(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Cnf cnf;
    benchmark::DoNotOptimize(encode_tseitin(adder, cnf));
  }
}
BENCHMARK(BM_TseitinEncode)->Arg(8)->Arg(32);

void BM_GenerateHanoi(benchmark::State& state) {
  const int disks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen::hanoi_instance(disks, gen::HanoiEncoding::optimal_moves(disks)));
  }
}
BENCHMARK(BM_GenerateHanoi)->Arg(3)->Arg(4)->Arg(5);

void BM_NbTwoCostFunction(benchmark::State& state) {
  // nb_two on a literal with a rich binary neighborhood.
  Cnf cnf(1);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Var v = cnf.add_var();
    cnf.add_binary(Lit(0, rng.coin()), Lit(v, rng.coin()));
  }
  Solver solver;
  solver.load(cnf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.nb_two(Lit::positive(0)));
    benchmark::DoNotOptimize(solver.nb_two(Lit::negative(0)));
  }
}
BENCHMARK(BM_NbTwoCostFunction);

}  // namespace

// BENCHMARK_MAIN, plus a machine-readable metrics snapshot of the traced
// variants' hub when BENCH_METRICS_OUT names a file (".prom" selects
// Prometheus text exposition, anything else JSON).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("BENCH_METRICS_OUT")) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n", path);
      return 1;
    }
    const telemetry::MetricsSnapshot snapshot = bench_hub().snapshot();
    const std::string name(path);
    out << (name.ends_with(".prom") ? snapshot.to_prometheus()
                                    : snapshot.to_json() + "\n");
  }
  return 0;
}
