#!/usr/bin/env bash
# Runs the BCP/propagation microbenchmarks (google-benchmark) in Release
# mode and writes the raw JSON report, establishing the repo's perf
# trajectory (see BENCH_PR3.json / BENCH_PR6.json at the repo root for the
# tracked before/after records). A machine-readable telemetry snapshot of
# the *Traced benchmark variants is written next to the benchmark JSON
# (<output>.metrics.json) so benchmark runs double as metrics fixtures.
#
# Also runs the model-checking engines benchmark (BMC incremental vs
# scratch, IC3 wall-clock — the BENCH_PR9.json payload) and writes its
# JSON next to the benchmark report.
#
# Usage:
#   bench/run_bench.sh [output.json]
#
# Environment:
#   BUILD_DIR     build directory (default: <repo>/build-bench)
#   BENCH_FILTER  --benchmark_filter regex
#                 (default: BM_PropagationThroughput|BM_NbTwoCostFunction)
#   BENCH_REPS    --benchmark_repetitions (default: 3)
#   METRICS_OUT   metrics snapshot path (default: <output>.metrics.json;
#                 a .prom suffix selects Prometheus text exposition)
#   ENGINES_OUT   engines benchmark path (default: <output>.engines.json)
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${BUILD_DIR:-$ROOT/build-bench}"
OUT="${1:-$ROOT/bench_propagation.json}"
FILTER="${BENCH_FILTER:-BM_PropagationThroughput|BM_NbTwoCostFunction}"
REPS="${BENCH_REPS:-3}"
METRICS="${METRICS_OUT:-$OUT.metrics.json}"
ENGINES="${ENGINES_OUT:-$OUT.engines.json}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" --target micro_solver engines_bench -j "$(nproc)"

if [ ! -x "$BUILD/bench/micro_solver" ]; then
  echo "error: micro_solver was not built (is libbenchmark-dev installed?)" >&2
  exit 1
fi

BENCH_METRICS_OUT="$METRICS" "$BUILD/bench/micro_solver" \
  --benchmark_filter="$FILTER" \
  --benchmark_repetitions="$REPS" \
  --benchmark_report_aggregates_only=true \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

"$BUILD/bench/engines_bench" >"$ENGINES"

echo "wrote $OUT"
echo "wrote $METRICS"
echo "wrote $ENGINES"
