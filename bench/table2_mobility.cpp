// Table 2 — "Changing mobility of decision-making".
//
// BerkMin (branching inside the current top conflict clause) against
// Less_mobility (globally most active variable, Chaff-style). The paper
// reports dramatic losses for the ablation on Beijing, Miters and
// Fvp_unsat2.0, including outright timeouts.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  const int violations = run_class_comparison(
      "Table 2: mobility of decision-making",
      {{"BerkMin", SolverOptions::berkmin()},
       {"Less_mobility", SolverOptions::less_mobility()}},
      args);

  print_paper_reference("Table 2",
      "Class            BerkMin(s)  Less_mobility(s) (aborted)\n"
      "Hole                  231.1            121.89\n"
      "Blocksworld           10.26             14.93\n"
      "Par16                  8.83              6.65\n"
      "Sss1.0                  8.2             17.71\n"
      "Sss1.0a               10.14             16.93\n"
      "Sss_sat1.0           235.02            220.36\n"
      "Fvp_unsat1.0         765.16           4633.13\n"
      "Vliw_sat1.0         6199.52           9507.26\n"
      "Beijing              409.24         > 120,243 (2)\n"
      "Hanoi               1409.82           1072.12\n"
      "Miters              4584.72          28,452.88\n"
      "Fvp_unsat2.0        6539.84          > 94,653 (1)\n"
      "Total              20411.85         > 258,959 (3)");
  return violations == 0 ? 0 : 1;
}
