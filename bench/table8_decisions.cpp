// Table 8 — "Details of Chaff's and BerkMin's performance on some
// instances (runtimes)": per-instance decision counts and runtimes.
// The paper's point: BerkMin wins because it builds smaller search trees
// (fewer decisions), not because of faster per-decision code.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv, /*default_timeout=*/30.0);

  std::cout << "=== Table 8: per-instance decisions and runtimes ===\n"
            << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance\n";

  Table table({"Instance name", "Satisfiable", "zChaff decisions", "zChaff time (s)",
               "BerkMin decisions", "BerkMin time (s)"});
  int violations = 0;
  for (const harness::Instance& instance :
       harness::detail_instances(args.scale, args.seed)) {
    const harness::RunResult chaff =
        harness::run_instance(instance, SolverOptions::chaff_like(), args.timeout);
    const harness::RunResult berkmin =
        harness::run_instance(instance, SolverOptions::berkmin(), args.timeout);
    violations += chaff.expectation_violated + berkmin.expectation_violated;
    const auto cell = [&](const harness::RunResult& r) {
      return r.timed_out ? "> " + format_seconds(args.timeout)
                         : format_seconds(r.seconds);
    };
    table.add_row({instance.name,
                   instance.expected == gen::Expectation::sat ? "Yes" : "No",
                   format_count(chaff.stats.decisions), cell(chaff),
                   format_count(berkmin.stats.decisions), cell(berkmin)});
  }
  std::cout << table.to_string();
  if (violations > 0) std::cout << "ERROR: expectation violations!\n";

  print_paper_reference("Table 8",
      "Instance     Sat  zChaff decisions  time(s)    BerkMin decisions  time(s)\n"
      "9vliw_bp_mc  No   2,577,451         1116.2     2,384,485          1625.0\n"
      "Hanoi5       Yes  1,290,705         9517.6     194,672            71.2\n"
      "Hanoi6       Yes  4,977,866         41,313.1   1,948,717          1328.7\n"
      "4pipe        No   466,909           396.7      144,036            40.9\n"
      "5pipe        No   1,364,866         894.4      213,859            71.8\n"
      "6pipe        No   5,271,512         11,811.7   1,371,445          1015.6\n"
      "7pipe*       No   14,748,116        > 60,000   3,357,821          3673.2");
  return violations == 0 ? 0 : 1;
}
