// Table 10 — "Performance of BerkMin, zChaff and limmat on SAT-2002
// competition instances": a mixed hard suite solved by three solver
// configurations under a common timeout; '*' marks a timeout as in the
// paper. The robustness metric is the number of solved instances.
#include <iostream>

#include "bench_common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace berkmin;
  using namespace berkmin::bench;

  const BenchArgs args = parse_bench_args(argc, argv, /*default_timeout=*/20.0);

  std::cout << "=== Table 10: competition-style robustness ===\n"
            << "scale " << args.scale << ", timeout " << args.timeout
            << " s/instance (the competition used 6 h)\n";

  struct Entry {
    std::string label;
    SolverOptions options;
    int solved = 0;
    int solved_sat = 0;
  };
  std::vector<Entry> entries{{"BerkMin", SolverOptions::berkmin()},
                             {"Limmat", SolverOptions::limmat_like()},
                             {"zChaff", SolverOptions::chaff_like()}};

  Table table({"Instance", "Sat/Unsat", "BerkMin (s)", "Limmat (s)",
               "zChaff (s)"});
  int violations = 0;
  for (const harness::Instance& instance :
       harness::competition_suite(args.scale, args.seed)) {
    std::vector<std::string> row{
        instance.name,
        instance.expected == gen::Expectation::sat ? "Sat" : "Unsat"};
    for (Entry& entry : entries) {
      const harness::RunResult run =
          harness::run_instance(instance, entry.options, args.timeout);
      violations += run.expectation_violated;
      if (run.timed_out) {
        row.push_back("*");
      } else {
        row.push_back(format_seconds(run.seconds));
        ++entry.solved;
        if (run.status == SolveStatus::satisfiable) ++entry.solved_sat;
      }
    }
    table.add_row(std::move(row));
  }
  std::cout << table.to_string();

  std::cout << "Total solved:            ";
  for (const Entry& entry : entries) {
    std::cout << entry.label << "=" << entry.solved << "  ";
  }
  std::cout << "\nTotal solved satisfiable: ";
  for (const Entry& entry : entries) {
    std::cout << entry.label << "=" << entry.solved_sat << "  ";
  }
  std::cout << "\n";
  if (violations > 0) std::cout << "ERROR: expectation violations!\n";

  print_paper_reference("Table 10 (summary)",
      "Out of 17 listed finals instances (timeout 6 h):\n"
      "  solved:              BerkMin 15, limmat 4, zChaff 7\n"
      "  solved satisfiable:  BerkMin 5,  limmat 2, zChaff 1");
  return violations == 0 ? 0 : 1;
}
