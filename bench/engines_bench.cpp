// BMC incremental unrolling vs per-bound scratch re-encoding, plus IC3
// wall-clock, on generated safety families (ISSUE 9 acceptance
// benchmark, BENCH_PR9.json).
//
// Two BMC flows over the same safe transition system:
//
//  * scratch: every bound t re-instantiates frames 0..t into a fresh
//    solver and solves once — the monolithic re-encode a
//    non-incremental flow pays at each bound.
//  * incremental: one BmcEngine run over a single long-lived solver —
//    one frame extension plus one assumption query per bound, with
//    retained lemmas and warm activities carrying across bounds.
//
// The IC3 column records the same property discharged by induction:
// wall-clock, frames opened, and the extracted invariant's size.
//
// Prints one JSON object (the BENCH_PR9.json payload) to stdout.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/solver.h"
#include "engines/backend.h"
#include "engines/bmc.h"
#include "engines/ic3.h"
#include "gen/safety.h"
#include "util/timer.h"

using namespace berkmin;
using namespace berkmin::engines;

namespace {

struct Case {
  int latches;
  int inputs;
  int bound;
  bool latch_heavy;
  std::uint64_t seed;
};

double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs.empty() ? 0.0 : xs[xs.size() / 2];
}

// Re-encode frames 0..t into a fresh solver and solve, for every bound.
// Returns total milliseconds, or a negative value on a wrong verdict.
double bmc_scratch_ms(const TransitionSystem& ts, int bound) {
  WallTimer timer;
  for (int t = 0; t <= bound; ++t) {
    Solver solver;
    SolverBackend backend(solver);
    FrameStack frames(ts, backend);
    for (int i = 0; i <= t; ++i) frames.extend();
    const Lit bad[] = {frames.frame(static_cast<std::size_t>(t)).bad};
    if (backend.solve(bad, Budget::unlimited()) !=
        SolveStatus::unsatisfiable) {
      return -1.0;
    }
  }
  return timer.seconds() * 1e3;
}

}  // namespace

int main() {
  // Seeds picked for non-trivially-inductive properties: IC3 must block
  // obligations and strengthen frames instead of closing at F_1 empty.
  const std::vector<Case> cases = {
      {8, 3, 10, false, 8},
      {8, 3, 12, false, 10},
      {8, 3, 10, true, 1},
  };
  constexpr int kReps = 3;

  std::cout << "{\n  \"bench\": \"engines_bench\",\n  \"cases\": [\n";
  bool first = true;
  for (const Case& c : cases) {
    gen::SafetyParams params;
    params.cycles = c.bound;
    params.num_latches = c.latches;
    params.num_inputs = c.inputs;
    params.safe = true;
    params.latch_heavy = c.latch_heavy;
    params.seed = c.seed;
    const TransitionSystem ts = gen::safety_system(params);

    std::vector<double> scratch_ms;
    std::vector<double> inc_ms;
    std::vector<double> ic3_ms;
    EngineResult bmc_result;
    EngineResult ic3_result;
    for (int rep = 0; rep < kReps; ++rep) {
      const double scratch = bmc_scratch_ms(ts, c.bound);
      if (scratch < 0.0) return 1;
      scratch_ms.push_back(scratch);

      Solver solver;
      SolverBackend backend(solver);
      WallTimer inc_timer;
      bmc_result = BmcEngine(ts, backend, {.bound = c.bound}).run();
      inc_ms.push_back(inc_timer.seconds() * 1e3);
      if (bmc_result.verdict != Verdict::safe_bounded) return 1;

      Solver ic3_solver;
      SolverBackend ic3_backend(ic3_solver);
      WallTimer ic3_timer;
      ic3_result = Ic3Engine(ts, ic3_backend, {}).run();
      ic3_ms.push_back(ic3_timer.seconds() * 1e3);
      if (ic3_result.verdict != Verdict::safe_invariant) return 1;
    }

    const double scratch = median(scratch_ms);
    const double incremental = median(inc_ms);
    const std::string name =
        std::string(c.latch_heavy ? "bmc-latch" : "bmc-safe") + "-l" +
        std::to_string(c.latches) + "-i" + std::to_string(c.inputs) + "-k" +
        std::to_string(c.bound) + "-s" + std::to_string(c.seed);

    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\n      \"name\": \"" << name << "\",\n"
              << "      \"latches\": " << c.latches
              << ",\n      \"inputs\": " << c.inputs
              << ",\n      \"bound\": " << c.bound << ",\n"
              << "      \"bmc\": {\"scratch_ms\": " << scratch
              << ", \"incremental_ms\": " << incremental << ", \"speedup\": "
              << (incremental > 0.0 ? scratch / incremental : 0.0)
              << ", \"solves\": " << bmc_result.stats.solves << "},\n"
              << "      \"ic3\": {\"ms\": " << median(ic3_ms)
              << ", \"frames\": " << ic3_result.bound
              << ", \"obligations\": " << ic3_result.stats.obligations
              << ", \"invariant_clauses\": " << ic3_result.invariant.size()
              << "}\n    }";
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}
